//! A shared (non-partitioned) policy that never admits migrations.
//!
//! Not a paper design: this exists for the checking layer (`h2-check`),
//! where "zero admitted migrations ⇒ zero migration traffic" is a
//! metamorphic relation on the controller — if the policy refuses every
//! miss, the HMC must report no migrations, no swaps, and no victim
//! write-backs regardless of workload or geometry.

use h2_hybrid::policy::{PartitionPolicy, PolicyParams};
use h2_hybrid::types::ReqClass;
use h2_sim_core::SeededRng;

/// Fully-shared placement, every migration denied.
#[derive(Debug, Clone)]
pub struct NoMigratePolicy {
    assoc: usize,
    channels: usize,
}

impl NoMigratePolicy {
    /// Build for a geometry of `assoc` ways and `channels` fast channels.
    pub fn new(assoc: usize, channels: usize) -> Self {
        assert!((1..=16).contains(&assoc));
        assert!(channels >= 1);
        Self { assoc, channels }
    }
}

impl PartitionPolicy for NoMigratePolicy {
    fn name(&self) -> &str {
        "NoMigrate"
    }

    fn alloc_mask(&self, _set: u64, _class: ReqClass) -> u16 {
        ((1u32 << self.assoc) - 1) as u16
    }

    fn way_channel(&self, set: u64, way: usize) -> usize {
        (way + set as usize) % self.channels
    }

    fn migration_allowed(
        &mut self,
        _class: ReqClass,
        _cost: u32,
        _is_write: bool,
        _slow_channel: usize,
        _rng: &mut SeededRng,
    ) -> bool {
        false
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            bw: 0,
            cap: self.assoc,
            tok: 0,
            label: "no-migrate".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denies_every_migration() {
        let mut p = NoMigratePolicy::new(4, 4);
        let mut rng = SeededRng::derive(1, "t");
        for i in 0..100u64 {
            assert!(!p.migration_allowed(
                if i % 2 == 0 { ReqClass::Cpu } else { ReqClass::Gpu },
                1 + (i % 2) as u32,
                i % 3 == 0,
                i as usize,
                &mut rng
            ));
        }
        assert_eq!(p.alloc_mask(3, ReqClass::Gpu), 0b1111);
        assert_eq!(p.name(), "NoMigrate");
    }
}
