//! Baseline hybrid-memory partitioning policies the paper compares against
//! (§III-C, §V):
//!
//! * **NoPart** — the non-partitioned baseline (re-exported
//!   [`h2_hybrid::policy::SharedPolicy`]).
//! * **[`waypart::WayPartPolicy`]** — static way-partitioning with 75 % of
//!   the ways dedicated to the CPU and a *coupled* way→channel map, so the
//!   capacity and bandwidth splits are forced equal (the drawback Hydrogen's
//!   decoupling removes).
//! * **[`hashcache::HashCachePolicy`]** — HAShCache: direct-mapped
//!   organisation with chaining (configured via
//!   `h2_hybrid::HybridConfig { assoc: 1, chaining: true, .. }`), CPU
//!   priority in the memory controller, and slow-memory bypass for a
//!   fraction of GPU fills.
//! * **[`profess::ProfessPolicy`]** — ProFess: probabilistic per-class
//!   migration with an epoch feedback loop that boosts whichever class is
//!   suffering the larger hit-rate deficit (fairness-driven MDM
//!   approximation).

pub mod hashcache;
pub mod kim;
pub mod nomigrate;
pub mod profess;
pub mod waypart;

pub use h2_hybrid::policy::SharedPolicy as NoPartPolicy;
pub use hashcache::HashCachePolicy;
pub use kim::KimPolicy;
pub use nomigrate::NoMigratePolicy;
pub use profess::ProfessPolicy;
pub use waypart::WayPartPolicy;
