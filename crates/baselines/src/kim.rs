//! Kim et al. (DAC 2012): hybrid DRAM/PRAM main memory for single-chip
//! CPU/GPU, as summarised in the Hydrogen paper's related work (§III-C):
//! GPU workloads are forced to the slow memory, with only *write-intensive*
//! blocks cached in the fast memory (writes are what hurt most on their
//! PRAM slow tier; on our DDR slow tier the same policy still shields the
//! fast tier from GPU streaming).

use h2_hybrid::policy::{PartitionPolicy, PolicyParams};
use h2_hybrid::types::ReqClass;
use h2_sim_core::SeededRng;

/// The Kim et al. write-filtered GPU caching policy.
#[derive(Debug, Clone)]
pub struct KimPolicy {
    assoc: usize,
    channels: usize,
}

impl KimPolicy {
    /// Build for the given geometry.
    pub fn new(assoc: usize, channels: usize) -> Self {
        Self { assoc, channels }
    }
}

impl PartitionPolicy for KimPolicy {
    fn name(&self) -> &str {
        "Kim2012"
    }

    fn alloc_mask(&self, _set: u64, _class: ReqClass) -> u16 {
        ((1u32 << self.assoc) - 1) as u16
    }

    fn way_channel(&self, set: u64, way: usize) -> usize {
        (set as usize + way) % self.channels
    }

    fn migration_allowed(
        &mut self,
        class: ReqClass,
        _cost: u32,
        is_write: bool,
        _slow_channel: usize,
        _rng: &mut SeededRng,
    ) -> bool {
        match class {
            ReqClass::Cpu => true,
            // GPU data stays in slow memory unless the block is being
            // written (write-intensity proxy: a write miss).
            ReqClass::Gpu => is_write,
        }
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            bw: 0,
            cap: self.assoc,
            tok: usize::MAX,
            label: "Kim2012 (GPU write-only caching)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_reads_never_migrate_writes_do() {
        let mut p = KimPolicy::new(4, 4);
        let mut rng = SeededRng::derive(1, "kim");
        assert!(!p.migration_allowed(ReqClass::Gpu, 1, false, 0, &mut rng));
        assert!(p.migration_allowed(ReqClass::Gpu, 1, true, 0, &mut rng));
        assert!(p.migration_allowed(ReqClass::Cpu, 2, false, 0, &mut rng));
        assert!(p.migration_allowed(ReqClass::Cpu, 2, true, 0, &mut rng));
    }

    #[test]
    fn capacity_is_shared() {
        let p = KimPolicy::new(4, 4);
        assert_eq!(p.alloc_mask(9, ReqClass::Cpu), p.alloc_mask(9, ReqClass::Gpu));
    }
}
