//! ProFess (Knyaginin, Papaefstathiou & Stenström, HPCA 2018) — a
//! probabilistic hybrid main-memory management framework for performance and
//! fairness, reimplemented from its description in the Hydrogen paper
//! (§III-C, §V): a bypass (migration-decision) mechanism that helps the
//! process currently suffering the larger hit-rate deficit or migration
//! cost, ported to the cache mode and 4-way associativity.
//!
//! Our approximation keeps a per-class migration probability and runs an
//! epoch feedback loop: the class with the worse fast-memory hit rate gets
//! its migration probability raised while the other class is throttled,
//! which equalises slowdowns the way ProFess' MDM mechanism does. There is
//! no capacity/bandwidth partitioning — the gap Hydrogen exploits.

use h2_hybrid::policy::{EpochSample, PartitionPolicy, PolicyParams};
use h2_hybrid::types::ReqClass;
use h2_sim_core::SeededRng;

/// Bounds for the adaptive migration probabilities.
const P_MIN: f64 = 0.05;
const P_MAX: f64 = 1.0;
/// Multiplicative adaptation step per epoch.
const STEP: f64 = 1.25;
/// Hit-rate difference treated as "fair enough".
const MARGIN: f64 = 0.02;

/// The ProFess policy.
#[derive(Debug, Clone)]
pub struct ProfessPolicy {
    assoc: usize,
    channels: usize,
    /// Migration probability per class `[cpu, gpu]`.
    prob: [f64; 2],
    epochs: u64,
}

impl ProfessPolicy {
    /// Build with both classes initially migrating at full probability.
    pub fn new(assoc: usize, channels: usize) -> Self {
        Self {
            assoc,
            channels,
            prob: [1.0, 0.6],
            epochs: 0,
        }
    }

    /// Current `(cpu, gpu)` migration probabilities.
    pub fn probabilities(&self) -> (f64, f64) {
        (self.prob[0], self.prob[1])
    }
}

impl PartitionPolicy for ProfessPolicy {
    fn name(&self) -> &str {
        "ProFess"
    }

    fn alloc_mask(&self, _set: u64, _class: ReqClass) -> u16 {
        ((1u32 << self.assoc) - 1) as u16
    }

    fn way_channel(&self, set: u64, way: usize) -> usize {
        (set as usize + way) % self.channels
    }

    fn migration_allowed(&mut self, class: ReqClass, cost: u32, _is_write: bool, _slow_channel: usize, rng: &mut SeededRng) -> bool {
        // Costlier migrations (dirty victims / swaps) are proportionally
        // less likely: ProFess weighs migration benefit against bandwidth
        // cost.
        rng.chance(self.prob[class.idx()] / cost.max(1) as f64)
    }

    fn on_epoch(&mut self, s: &EpochSample) -> bool {
        self.epochs += 1;
        let rate = |h: u64, m: u64| {
            let t = h + m;
            if t == 0 {
                return None;
            }
            Some(h as f64 / t as f64)
        };
        let (Some(cpu_hr), Some(gpu_hr)) = (
            rate(s.cpu_hits, s.cpu_misses),
            rate(s.gpu_hits, s.gpu_misses),
        ) else {
            return false;
        };
        if cpu_hr + MARGIN < gpu_hr {
            // CPU suffering: boost its fills, throttle GPU's.
            self.prob[0] = (self.prob[0] * STEP).clamp(P_MIN, P_MAX);
            self.prob[1] = (self.prob[1] / STEP).clamp(P_MIN, P_MAX);
        } else if gpu_hr + MARGIN < cpu_hr {
            self.prob[1] = (self.prob[1] * STEP).clamp(P_MIN, P_MAX);
            self.prob[0] = (self.prob[0] / STEP).clamp(P_MIN, P_MAX);
        }
        // Probability changes are not remapping reconfigurations.
        false
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            bw: 0,
            cap: self.assoc,
            tok: usize::MAX,
            label: format!(
                "ProFess p_cpu={:.2} p_gpu={:.2}",
                self.prob[0], self.prob[1]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapts_toward_suffering_class() {
        let mut p = ProfessPolicy::new(4, 4);
        let (c0, g0) = p.probabilities();
        // CPU hit rate much worse than GPU's for several epochs.
        for _ in 0..6 {
            p.on_epoch(&EpochSample {
                cpu_hits: 10,
                cpu_misses: 90,
                gpu_hits: 80,
                gpu_misses: 20,
                ..Default::default()
            });
        }
        let (c1, g1) = p.probabilities();
        assert!(c1 >= c0);
        assert!(g1 < g0, "GPU fills should be throttled: {g0} -> {g1}");
    }

    #[test]
    fn probabilities_stay_bounded() {
        let mut p = ProfessPolicy::new(4, 4);
        for _ in 0..100 {
            p.on_epoch(&EpochSample {
                cpu_hits: 0,
                cpu_misses: 100,
                gpu_hits: 100,
                gpu_misses: 0,
                ..Default::default()
            });
        }
        let (c, g) = p.probabilities();
        assert!((P_MIN..=P_MAX).contains(&c));
        assert!((P_MIN..=P_MAX).contains(&g));
        assert!((g - P_MIN).abs() < 1e-9, "gpu should bottom out");
    }

    #[test]
    fn balanced_hit_rates_hold_steady() {
        let mut p = ProfessPolicy::new(4, 4);
        let before = p.probabilities();
        for _ in 0..10 {
            p.on_epoch(&EpochSample {
                cpu_hits: 50,
                cpu_misses: 50,
                gpu_hits: 50,
                gpu_misses: 50,
                ..Default::default()
            });
        }
        assert_eq!(p.probabilities(), before);
    }

    #[test]
    fn empty_epochs_are_ignored() {
        let mut p = ProfessPolicy::new(4, 4);
        let before = p.probabilities();
        p.on_epoch(&EpochSample::default());
        assert_eq!(p.probabilities(), before);
    }

    #[test]
    fn migration_probability_shapes_decisions() {
        let mut p = ProfessPolicy::new(4, 4);
        // Push GPU probability to the floor.
        for _ in 0..30 {
            p.on_epoch(&EpochSample {
                cpu_hits: 0,
                cpu_misses: 100,
                gpu_hits: 100,
                gpu_misses: 0,
                ..Default::default()
            });
        }
        let mut rng = SeededRng::derive(3, "pf");
        let n = 4000;
        let gpu_ok = (0..n)
            .filter(|_| p.migration_allowed(ReqClass::Gpu, 1, false, 0, &mut rng))
            .count();
        let cpu_ok = (0..n)
            .filter(|_| p.migration_allowed(ReqClass::Cpu, 1, false, 0, &mut rng))
            .count();
        assert!(gpu_ok < n / 5, "gpu mostly bypassed: {gpu_ok}");
        assert!(cpu_ok > n * 8 / 10, "cpu mostly migrates: {cpu_ok}");
    }
}
