//! Simple static way-partitioning (the paper's `WayPart` baseline, §V):
//! 75 % of the ways are dedicated to CPU workloads, and ways map directly to
//! channels, so capacity and bandwidth are split in the *same* (coupled)
//! ratio — precisely the mismatch Hydrogen's decoupled scheme fixes.

use h2_hybrid::policy::{PartitionPolicy, PolicyParams};
use h2_hybrid::types::ReqClass;
use h2_sim_core::SeededRng;

/// Static coupled way-partitioning.
#[derive(Debug, Clone)]
pub struct WayPartPolicy {
    assoc: usize,
    channels: usize,
    cpu_ways: usize,
}

impl WayPartPolicy {
    /// `cpu_fraction` of the ways (rounded, at least 1, at most `assoc-1`
    /// when possible) go to the CPU. The paper uses 0.75.
    pub fn new(assoc: usize, channels: usize, cpu_fraction: f64) -> Self {
        assert!((1..=16).contains(&assoc));
        let mut cpu_ways = ((assoc as f64 * cpu_fraction).round() as usize).clamp(1, assoc);
        if assoc > 1 && cpu_ways == assoc {
            cpu_ways = assoc - 1; // leave the GPU at least one way if we can
        }
        Self {
            assoc,
            channels,
            cpu_ways,
        }
    }

    /// The paper's default 75 % split.
    pub fn default_75(assoc: usize, channels: usize) -> Self {
        Self::new(assoc, channels, 0.75)
    }

    /// Ways dedicated to the CPU.
    pub fn cpu_ways(&self) -> usize {
        self.cpu_ways
    }
}

impl PartitionPolicy for WayPartPolicy {
    fn name(&self) -> &str {
        "WayPart"
    }

    fn alloc_mask(&self, _set: u64, class: ReqClass) -> u16 {
        let cpu = ((1u32 << self.cpu_ways) - 1) as u16;
        let all = ((1u32 << self.assoc) - 1) as u16;
        match class {
            ReqClass::Cpu => cpu,
            ReqClass::Gpu => all & !cpu,
        }
    }

    fn way_channel(&self, _set: u64, way: usize) -> usize {
        // Coupled: the way index *is* the channel (folded if assoc >
        // channels). No per-set rotation — this is the whole drawback.
        way * self.channels / self.assoc
    }

    fn migration_allowed(&mut self, _class: ReqClass, _cost: u32, _is_write: bool, _slow_channel: usize, _rng: &mut SeededRng) -> bool {
        true
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            bw: self.cpu_ways * self.channels / self.assoc,
            cap: self.cpu_ways,
            tok: usize::MAX,
            label: format!("WayPart {}/{} ways CPU", self.cpu_ways, self.assoc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_75_25() {
        let p = WayPartPolicy::default_75(4, 4);
        assert_eq!(p.cpu_ways(), 3);
        assert_eq!(p.alloc_mask(0, ReqClass::Cpu), 0b0111);
        assert_eq!(p.alloc_mask(9, ReqClass::Gpu), 0b1000);
    }

    #[test]
    fn coupled_mapping_pins_gpu_to_one_channel() {
        let p = WayPartPolicy::default_75(4, 4);
        // GPU way (3) is always channel 3, in every set: coupled ratios.
        for set in 0..100u64 {
            assert_eq!(p.way_channel(set, 3), 3);
            assert_eq!(p.way_channel(set, 0), 0);
        }
    }

    #[test]
    fn gpu_always_keeps_a_way_when_possible() {
        for assoc in 2..=16usize {
            let p = WayPartPolicy::new(assoc, 4, 0.99);
            assert!(p.alloc_mask(0, ReqClass::Gpu) != 0, "assoc {assoc}");
        }
        // Direct-mapped degenerates to CPU-only placement.
        let p = WayPartPolicy::new(1, 4, 0.75);
        assert_eq!(p.alloc_mask(0, ReqClass::Gpu), 0);
    }

    #[test]
    fn folding_for_high_assoc() {
        let p = WayPartPolicy::default_75(8, 4);
        assert_eq!(p.way_channel(0, 0), 0);
        assert_eq!(p.way_channel(0, 7), 3);
        assert!(p.way_channel(0, 5) < 4);
    }
}
