//! DRAM timing parameters and the presets used by the paper (Table I).
//!
//! All times are in CPU cycles at 3.2 GHz (see `h2_sim_core::units`). The
//! fast memory is HBM2E with 16 physical channels grouped into 4
//! *superchannels* of 4 channels each, so one superchannel access supplies a
//! 64 B cacheline in 2 cycles (102.4 GB/s) and a 256 B block in 8 cycles
//! (§IV-A of the paper). The slow memory is DDR4-3200 (25.6 GB/s/channel).

use crate::energy::EnergyParams;
use h2_sim_core::units::{mem_cycles_to_cpu, Cycles};

/// Timing and geometry of one DRAM device class.
#[derive(Debug, Clone)]
pub struct DramTiming {
    /// Human-readable name ("HBM2E", "DDR4-3200", ...).
    pub name: &'static str,
    /// Row-to-column delay (ACT to READ/WRITE), CPU cycles.
    pub t_rcd: Cycles,
    /// Column access strobe latency, CPU cycles.
    pub t_cas: Cycles,
    /// Row precharge, CPU cycles.
    pub t_rp: Cycles,
    /// Data-bus occupancy for one 64 B beat, CPU cycles.
    pub burst_64b: Cycles,
    /// Banks per channel (rank x bank flattened).
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes (per channel).
    pub row_bytes: u64,
    /// Energy model parameters.
    pub energy: EnergyParams,
}

impl DramTiming {
    /// Bus cycles to move `bytes` (rounded up to 64 B beats).
    pub fn burst_cycles(&self, bytes: u32) -> Cycles {
        let beats = (bytes as u64).div_ceil(64);
        beats.max(1) * self.burst_64b
    }

    /// Closed-bank access latency (ACT + CAS), excluding the burst.
    pub fn closed_latency(&self) -> Cycles {
        self.t_rcd + self.t_cas
    }

    /// Row-conflict access latency (PRE + ACT + CAS), excluding the burst.
    pub fn conflict_latency(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.t_cas
    }

    /// Peak per-channel bandwidth in GB/s.
    pub fn peak_gbs(&self) -> f64 {
        64.0 * h2_sim_core::units::CPU_FREQ_GHZ / self.burst_64b as f64
    }
}

/// Named timing presets used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingPreset {
    /// One HBM2E superchannel (4 ganged physical channels), Table I.
    Hbm2eSuper,
    /// One HBM3 superchannel: doubled bandwidth, same latencies (Fig 5b).
    Hbm3Super,
    /// One DDR4-3200 channel, Table I.
    Ddr4,
}

impl TimingPreset {
    /// Materialise the preset.
    pub fn timing(self) -> DramTiming {
        match self {
            // HBM2E @1600 MHz, RCD-CAS-RP 23-23-23 memory cycles (Table I).
            // Superchannel = 4 channels x 25.6 GB/s = 102.4 GB/s.
            TimingPreset::Hbm2eSuper => DramTiming {
                name: "HBM2E",
                t_rcd: mem_cycles_to_cpu(23, 1600.0),
                t_cas: mem_cycles_to_cpu(23, 1600.0),
                t_rp: mem_cycles_to_cpu(23, 1600.0),
                burst_64b: 2,
                banks_per_channel: 64, // 4 channels x 16 banks
                row_bytes: 4096,       // 4 x 1 kB row buffers ganged
                energy: EnergyParams {
                    rw_pj_per_bit: 6.4,
                    act_pre_nj: 15.0,
                    background_mw_per_channel: 250.0,
                },
            },
            // HBM3: "doubled bandwidth and scaled timing parameters".
            TimingPreset::Hbm3Super => DramTiming {
                name: "HBM3",
                t_rcd: mem_cycles_to_cpu(23, 1600.0),
                t_cas: mem_cycles_to_cpu(23, 1600.0),
                t_rp: mem_cycles_to_cpu(23, 1600.0),
                burst_64b: 1,
                banks_per_channel: 64,
                row_bytes: 4096,
                energy: EnergyParams {
                    rw_pj_per_bit: 5.0,
                    act_pre_nj: 15.0,
                    background_mw_per_channel: 300.0,
                },
            },
            // DDR4-3200 @1600 MHz, RCD-CAS-RP 22-22-22 (Table I),
            // 64-bit channel = 25.6 GB/s, 2 ranks x 16 banks.
            TimingPreset::Ddr4 => DramTiming {
                name: "DDR4-3200",
                t_rcd: mem_cycles_to_cpu(22, 1600.0),
                t_cas: mem_cycles_to_cpu(22, 1600.0),
                t_rp: mem_cycles_to_cpu(22, 1600.0),
                burst_64b: 8,
                banks_per_channel: 32,
                row_bytes: 8192,
                energy: EnergyParams {
                    rw_pj_per_bit: 33.0,
                    act_pre_nj: 15.0,
                    background_mw_per_channel: 150.0,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        let h = TimingPreset::Hbm2eSuper.timing();
        assert_eq!(h.t_rcd, 46);
        assert_eq!(h.t_cas, 46);
        assert_eq!(h.t_rp, 46);
        let d = TimingPreset::Ddr4.timing();
        assert_eq!(d.t_rcd, 44);
    }

    #[test]
    fn bandwidth_ratio_fast_to_slow_is_4x() {
        let h = TimingPreset::Hbm2eSuper.timing();
        let d = TimingPreset::Ddr4.timing();
        // 4 superchannels vs 4 DDR channels -> per-channel ratio is the
        // system ratio.
        let ratio = h.peak_gbs() / d.peak_gbs();
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn hbm3_doubles_bandwidth() {
        let h2e = TimingPreset::Hbm2eSuper.timing();
        let h3 = TimingPreset::Hbm3Super.timing();
        assert!((h3.peak_gbs() / h2e.peak_gbs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn burst_rounding() {
        let d = TimingPreset::Ddr4.timing();
        assert_eq!(d.burst_cycles(64), 8);
        assert_eq!(d.burst_cycles(256), 32);
        assert_eq!(d.burst_cycles(65), 16); // rounds up to 2 beats
        assert_eq!(d.burst_cycles(1), 8);
    }

    #[test]
    fn latency_composition() {
        let d = TimingPreset::Ddr4.timing();
        assert_eq!(d.closed_latency(), d.t_rcd + d.t_cas);
        assert_eq!(d.conflict_latency(), d.t_rp + d.t_rcd + d.t_cas);
        assert!(d.conflict_latency() > d.closed_latency());
    }
}
