//! DRAM energy accounting.
//!
//! The paper's Table I gives per-bit read/write energy and per-activation
//! energy for both tiers; Fig 6 reports total memory energy (dynamic +
//! static). We accumulate raw event counts in the device and convert to
//! joules here, adding a per-channel background (static) power term so that
//! runtime reductions translate into static-energy savings, as the paper
//! observes for C11.

use h2_sim_core::units::{cycles_to_ns, Cycles};

/// Energy model parameters for one device class.
#[derive(Debug, Clone, Copy)]
pub struct EnergyParams {
    /// Dynamic read/write energy per bit transferred (pJ/bit).
    pub rw_pj_per_bit: f64,
    /// Energy per activate+precharge pair (nJ).
    pub act_pre_nj: f64,
    /// Background (static) power per channel (mW).
    pub background_mw_per_channel: f64,
}

/// An energy total decomposed the way Fig 6 discusses it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic read/write energy (J).
    pub dynamic_rw_j: f64,
    /// Activate/precharge energy (J).
    pub act_pre_j: f64,
    /// Background/static energy over the elapsed window (J).
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_rw_j + self.act_pre_j + self.static_j
    }

    /// Compute a breakdown from raw counters.
    pub fn from_counts(
        params: &EnergyParams,
        bytes_transferred: u64,
        activations: u64,
        channels: usize,
        elapsed: Cycles,
    ) -> Self {
        let dynamic_rw_j = bytes_transferred as f64 * 8.0 * params.rw_pj_per_bit * 1e-12;
        let act_pre_j = activations as f64 * params.act_pre_nj * 1e-9;
        // mW * ns = pJ.
        let static_j =
            params.background_mw_per_channel * channels as f64 * cycles_to_ns(elapsed) * 1e-12;
        Self {
            dynamic_rw_j,
            act_pre_j,
            static_j,
        }
    }

    /// Sum two breakdowns (e.g. fast + slow tier).
    pub fn plus(&self, other: &Self) -> Self {
        Self {
            dynamic_rw_j: self.dynamic_rw_j + other.dynamic_rw_j,
            act_pre_j: self.act_pre_j + other.act_pre_j,
            static_j: self.static_j + other.static_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: EnergyParams = EnergyParams {
        rw_pj_per_bit: 33.0,
        act_pre_nj: 15.0,
        background_mw_per_channel: 150.0,
    };

    #[test]
    fn dynamic_energy_scales_with_bytes() {
        let a = EnergyBreakdown::from_counts(&P, 1000, 0, 1, 0);
        let b = EnergyBreakdown::from_counts(&P, 2000, 0, 1, 0);
        assert!((b.dynamic_rw_j / a.dynamic_rw_j - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_activation_is_15_nj() {
        let e = EnergyBreakdown::from_counts(&P, 0, 1, 1, 0);
        assert!((e.act_pre_j - 15e-9).abs() < 1e-18);
    }

    #[test]
    fn static_energy_scales_with_time_and_channels() {
        // 150 mW x 4 channels x 1 second = 0.6 J. 1 s = 3.2e9 cycles.
        let e = EnergyBreakdown::from_counts(&P, 0, 0, 4, 3_200_000_000);
        assert!((e.static_j - 0.6).abs() < 1e-6, "{}", e.static_j);
    }

    #[test]
    fn plus_adds_componentwise() {
        let a = EnergyBreakdown::from_counts(&P, 64, 1, 1, 100);
        let b = EnergyBreakdown::from_counts(&P, 128, 2, 2, 100);
        let s = a.plus(&b);
        assert!((s.total_j() - (a.total_j() + b.total_j())).abs() < 1e-18);
    }

    #[test]
    fn per_bit_cost_matches_table1() {
        // 64 B at 33 pJ/bit = 64*8*33 pJ = 16.896 nJ.
        let e = EnergyBreakdown::from_counts(&P, 64, 0, 1, 0);
        assert!((e.dynamic_rw_j - 16.896e-9).abs() < 1e-15);
    }
}
