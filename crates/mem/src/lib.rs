//! DRAM device models for the Hydrogen reproduction.
//!
//! A [`device::MemDevice`] is a set of channels, each with banks, an open-row
//! register per bank, a shared data bus, and a bounded command queue drained
//! by an FR-FCFS-like scheduler (priority, then row-hit, then age). Timing
//! presets for HBM2E / HBM3 superchannels and DDR4 channels live in
//! [`timing`], energy accounting in [`energy`].
//!
//! The device is event-agnostic: callers enqueue commands and receive back
//! `(completion_time, token)` pairs to schedule on their own event queue,
//! then call [`device::MemDevice::on_complete`] when those events fire.

pub mod device;
pub mod energy;
pub mod timing;

pub use device::{ChanOp, ChannelShard, MemCmd, MemDevice, MemStats, SeqStarted, StartedCmd};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use timing::{DramTiming, TimingPreset};
