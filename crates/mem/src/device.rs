//! The DRAM device model: channels, banks, open rows, a shared data bus per
//! channel, and an FR-FCFS-like command scheduler with request priorities.
//!
//! # Model
//!
//! Each channel serves one data burst at a time on its bus, but up to
//! [`PIPELINE_DEPTH`] commands may be "started" concurrently so that bank
//! preparation (precharge/activate) of the next command overlaps the current
//! burst — a lightweight approximation of bank-level parallelism that
//! preserves the two first-order effects the paper depends on: bus bandwidth
//! saturation under streaming (GPU) traffic and row-miss latency under
//! random (CPU) traffic.
//!
//! The device never touches the event queue. `enqueue` + `pump` return
//! started commands with their completion times; the caller schedules those
//! and calls [`MemDevice::on_complete`] when they fire, then pumps again.
//!
//! # Pending-command layout
//!
//! Queued commands live in a per-channel structure-of-arrays slab
//! ([`CmdSlab`]): the fields the FR-FCFS scan reads every [`MemDevice::pump`]
//! (priority, arrival time, arrival sequence) sit in their own dense arrays,
//! while decode-only fields (bank/row — precomputed once at enqueue — bytes,
//! token, tracing context) are touched only when a command actually starts.
//! Slot occupancy is a two-level bitmap (per-slot words plus a summary word
//! per 64 slot-words, the calendar queue's template), and freed slots are
//! reused lowest-index-first, so steady state never allocates and never
//! moves a pending command. A per-slot row-hit bitmap is maintained
//! incrementally through per-bank slot bitmaps: the scan itself is a
//! conditional-move max over packed `(priority, row_hit, age)` keys with no
//! per-candidate address math. Selection is key-based — slot order never
//! influences which command wins, so completion order is identical across
//! scalar, batched, and parallel kernels.

use crate::energy::EnergyBreakdown;
use crate::timing::DramTiming;
use h2_sim_core::trace_span::{
    coalesce, split_queue_wait, BlameCause, BlameClass, CmdTrace, SpanInterval, TraceTag,
};
use h2_sim_core::units::Cycles;
use h2_sim_core::{CounterId, GaugeId, MetricsRegistry};

/// Waiting time after which a queued command is escalated past all
/// priorities (starvation guard for priority schedulers).
pub const AGE_CAP: Cycles = 250;

/// How many commands a channel may have in flight at once. This must cover
/// the CAS latency / burst-time ratio (~6 for both presets) so that a
/// streaming bank keeps the data bus saturated; bank prep of later commands
/// overlaps earlier bursts.
pub const PIPELINE_DEPTH: usize = 48;

/// A command presented to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCmd {
    /// Device byte address (bank/row are derived from it).
    pub addr: u64,
    /// Transfer size in bytes (rounded up to 64 B beats internally).
    pub bytes: u32,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Scheduling priority; higher wins (HAShCache prioritises CPU = 1).
    pub priority: u8,
    /// Opaque caller token, returned on completion.
    pub token: u64,
}

/// A command the scheduler has started, with its completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedCmd {
    /// Absolute cycle at which the data transfer finishes.
    pub done_at: Cycles,
    /// The caller's token.
    pub token: u64,
    /// Channel that served it (for the caller's bookkeeping).
    pub channel: usize,
}

/// A deferred per-channel device operation, the parallel kernel's wire
/// format: the sequential call sites log these instead of touching the
/// device, and the owning channel worker applies them FIFO — producing
/// state and results value-identical to immediate application, because
/// every cross-channel input (device arrival sequence, pump cardinality)
/// is pre-resolved by the controller's mirror.
#[derive(Debug, Clone)]
pub enum ChanOp {
    /// [`MemDevice::enqueue_traced`] with the device arrival sequence the
    /// sequential path would have assigned.
    Enqueue {
        /// The command.
        cmd: MemCmd,
        /// Enqueue time.
        now: Cycles,
        /// Requester class (tracing bookkeeping).
        class: BlameClass,
        /// Span tag for the demand command of a sampled transaction.
        tag: Option<TraceTag>,
        /// Pre-assigned device-wide arrival sequence.
        seq: u64,
    },
    /// [`MemDevice::pump`]; starts exactly `expect` commands whose
    /// completion events were pre-reserved at event-queue sequence
    /// `seq_base` (consecutively, in start order).
    Pump {
        /// Pump time.
        now: Cycles,
        /// First reserved event-queue sequence number.
        seq_base: u64,
        /// Predicted start count (`min(queued, free pipeline slots)`);
        /// the worker asserts the device agrees.
        expect: u32,
    },
    /// [`MemDevice::on_complete_traced`] for `token`.
    Complete {
        /// The finished command's token.
        token: u64,
    },
}

/// A started command paired with the event-queue sequence number reserved
/// for its completion event (parallel kernel flush results).
#[derive(Debug, Clone, Copy)]
pub struct SeqStarted {
    /// Reserved event-queue sequence for the completion event.
    pub seq: u64,
    /// The started command.
    pub cmd: StartedCmd,
}

/// One channel detached from a [`MemDevice`] into an independently
/// executable unit (its state plus copies of the device's immutable
/// parameters). The parallel kernel moves shards onto worker threads,
/// streams [`ChanOp`]s at them, and re-attaches at barriers so aggregate
/// device views work unchanged.
#[derive(Debug)]
pub struct ChannelShard {
    ch_index: usize,
    channel: Channel,
    timing: DramTiming,
    amap: AddrMap,
    demand_first: bool,
    tracing: bool,
    iv_pool: Vec<Vec<SpanInterval>>,
    /// Reusable pump output buffer; `apply` drains it into the caller's
    /// `started` after every pump, so it holds no state between ops. Kept
    /// on the shard so the hot Pump path allocates nothing in steady state.
    pump_scratch: Vec<StartedCmd>,
}

impl ChannelShard {
    /// The channel index this shard came from.
    pub fn channel_index(&self) -> usize {
        self.ch_index
    }

    /// Apply one deferred operation. Started commands (with their reserved
    /// completion sequences) go to `started`; blame decompositions of
    /// traced commands go to `traces`.
    pub fn apply(
        &mut self,
        op: &ChanOp,
        started: &mut Vec<SeqStarted>,
        traces: &mut Vec<CmdTrace>,
    ) {
        match *op {
            ChanOp::Enqueue { cmd, now, class, tag, seq } => {
                self.channel.enqueue(
                    &self.amap,
                    self.demand_first,
                    self.tracing,
                    cmd,
                    now,
                    class,
                    tag,
                    seq,
                );
            }
            ChanOp::Pump { now, seq_base, expect } => {
                let mut out = std::mem::take(&mut self.pump_scratch);
                out.clear();
                self.channel.pump(
                    &self.timing,
                    self.tracing,
                    &mut self.iv_pool,
                    self.ch_index,
                    now,
                    &mut out,
                );
                assert_eq!(
                    out.len(),
                    expect as usize,
                    "parallel mirror diverged from device on channel {}",
                    self.ch_index
                );
                started.extend(out.drain(..).enumerate().map(|(i, cmd)| SeqStarted {
                    seq: seq_base + i as u64,
                    cmd,
                }));
                self.pump_scratch = out;
            }
            ChanOp::Complete { token } => {
                self.channel.complete(self.tracing, token);
            }
        }
        if self.tracing && !self.channel.records.is_empty() {
            traces.append(&mut self.channel.records);
        }
    }
}

/// Address → (bank, row) decomposition, strength-reduced to shifts and
/// masks when the geometry is a power of two (both Table I presets are).
#[derive(Debug, Clone, Copy)]
struct AddrMap {
    row_bytes: u64,
    banks: u64,
    /// `log2(row_bytes)`, valid when `pow2`.
    row_shift: u32,
    /// `banks - 1`, valid when `pow2`.
    bank_mask: u64,
    /// `log2(banks)`, valid when `pow2`.
    bank_shift: u32,
    pow2: bool,
}

impl AddrMap {
    fn new(row_bytes: u64, banks: u64) -> Self {
        let pow2 = row_bytes.is_power_of_two() && banks.is_power_of_two();
        Self {
            row_bytes,
            banks,
            row_shift: row_bytes.trailing_zeros(),
            bank_mask: banks.wrapping_sub(1),
            bank_shift: banks.trailing_zeros(),
            pow2,
        }
    }

    /// Map a device address to (bank index, row id). Value-identical to
    /// `row_global = addr / row_bytes; (row_global % banks, row_global /
    /// banks)` — the shift path is exact for power-of-two geometry.
    #[inline]
    fn map(&self, addr: u64) -> (u32, u64) {
        if self.pow2 {
            let row_global = addr >> self.row_shift;
            ((row_global & self.bank_mask) as u32, row_global >> self.bank_shift)
        } else {
            let row_global = addr / self.row_bytes;
            ((row_global % self.banks) as u32, row_global / self.banks)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycles,
    // Per-bank locality stats (telemetry).
    row_hits: u64,
    row_conflicts: u64,
    /// Class of the last command started on this bank (tracing only):
    /// blames bank-busy waits on whoever occupied the bank.
    last_class: BlameClass,
}

/// Tracing context attached to the demand command of a sampled
/// transaction: its span tag plus the channel's queue composition (by
/// [`BlameClass`]) snapshotted at enqueue.
#[derive(Debug, Clone, Copy)]
struct TracedInfo {
    tag: TraceTag,
    ahead: [u64; 3],
}

/// Structure-of-arrays slab of one channel's pending commands.
///
/// Capacity is always a multiple of 64; a slot is queued iff its `occ` bit
/// is set. `summary` has one bit per `occ` word (so the scan skips runs of
/// empty slots the way the calendar queue skips empty wheel slots), `hit`
/// mirrors `occ` with the slot's current row-hit status, and `bank_slots`
/// holds one slot-bitmap per bank so `hit` can be refreshed incrementally
/// whenever a bank's open row changes.
#[derive(Debug, Default)]
struct CmdSlab {
    // Hot scan arrays (read for every queued candidate every pick).
    prio: Vec<u8>,
    arrival_time: Vec<Cycles>,
    arrival_seq: Vec<u64>,
    // Decode arrays (read once, when a command starts).
    bank: Vec<u32>,
    row: Vec<u64>,
    bytes: Vec<u32>,
    write: Vec<bool>,
    token: Vec<u64>,
    class: Vec<BlameClass>,
    trace: Vec<Option<TracedInfo>>,
    /// Slot occupancy, one bit per slot.
    occ: Vec<u64>,
    /// One bit per `occ` word: word has at least one queued slot.
    summary: Vec<u64>,
    /// Row-hit status per slot (`hit ⊆ occ`).
    hit: Vec<u64>,
    /// Per-bank slot bitmaps (`bank_slots[b] ⊆ occ`).
    bank_slots: Vec<Vec<u64>>,
    /// Queued commands (population count of `occ`).
    len: usize,
}

impl CmdSlab {
    fn new(banks: usize) -> Self {
        let mut s = Self {
            bank_slots: vec![Vec::new(); banks],
            ..Self::default()
        };
        s.grow();
        s
    }

    /// Add one 64-slot word to every array. Called at construction and on
    /// overflow; steady state never grows.
    fn grow(&mut self) {
        let add = 64;
        self.prio.resize(self.prio.len() + add, 0);
        self.arrival_time.resize(self.arrival_time.len() + add, 0);
        self.arrival_seq.resize(self.arrival_seq.len() + add, 0);
        self.bank.resize(self.bank.len() + add, 0);
        self.row.resize(self.row.len() + add, 0);
        self.bytes.resize(self.bytes.len() + add, 0);
        self.write.resize(self.write.len() + add, false);
        self.token.resize(self.token.len() + add, 0);
        self.class.resize(self.class.len() + add, BlameClass::Background);
        self.trace.resize(self.trace.len() + add, None);
        self.occ.push(0);
        self.hit.push(0);
        for b in &mut self.bank_slots {
            b.push(0);
        }
        if self.occ.len().div_ceil(64) > self.summary.len() {
            self.summary.push(0);
        }
    }

    /// Lowest free slot index, growing the slab when full.
    fn alloc_slot(&mut self) -> usize {
        for (w, &word) in self.occ.iter().enumerate() {
            if word != u64::MAX {
                return w * 64 + (!word).trailing_zeros() as usize;
            }
        }
        let slot = self.occ.len() * 64;
        self.grow();
        slot
    }

    #[inline]
    fn set_occupied(&mut self, slot: usize, hit: bool) {
        let (w, b) = (slot / 64, slot % 64);
        self.occ[w] |= 1 << b;
        self.summary[w / 64] |= 1 << (w % 64);
        self.hit[w] = (self.hit[w] & !(1 << b)) | ((hit as u64) << b);
        self.bank_slots[self.bank[slot] as usize][w] |= 1 << b;
        self.len += 1;
    }

    #[inline]
    fn clear_slot(&mut self, slot: usize) {
        let (w, b) = (slot / 64, slot % 64);
        self.occ[w] &= !(1 << b);
        if self.occ[w] == 0 {
            self.summary[w / 64] &= !(1 << (w % 64));
        }
        self.hit[w] &= !(1 << b);
        self.bank_slots[self.bank[slot] as usize][w] &= !(1 << b);
        self.trace[slot] = None;
        self.len -= 1;
    }

    /// Refresh the row-hit bits of every slot queued on `bank` after its
    /// open row changed to `row`.
    #[inline]
    fn rehit_bank(&mut self, bank: usize, row: u64) {
        for (w, &word) in self.bank_slots[bank].iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = w * 64 + b;
                let hit = (self.row[slot] == row) as u64;
                self.hit[w] = (self.hit[w] & !(1 << b)) | (hit << b);
            }
        }
    }

    /// FR-FCFS-lite candidate scan: the queued slot with the maximal
    /// `(priority, row_hit, u64::MAX - arrival_seq)` key, commands older
    /// than [`AGE_CAP`] escalated to the top priority. Keys are packed into
    /// one integer so the inner loop is a single compare-and-select per
    /// candidate; keys are unique (arrival sequence numbers are), so scan
    /// order cannot influence the winner.
    #[inline]
    fn pick(&self, now: Cycles) -> Option<usize> {
        let mut best_key: u128 = 0;
        let mut best_slot = 0usize;
        for (sw, &sword) in self.summary.iter().enumerate() {
            let mut swbits = sword;
            while swbits != 0 {
                let w = sw * 64 + swbits.trailing_zeros() as usize;
                swbits &= swbits - 1;
                let mut bits = self.occ[w];
                let hits = self.hit[w];
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let slot = w * 64 + b;
                    let aged = now.saturating_sub(self.arrival_time[slot]) > AGE_CAP;
                    let prio = if aged { u8::MAX } else { self.prio[slot] };
                    let key = (((prio as u128) << 65)
                        | (((hits >> b) & 1) as u128) << 64
                        | (u64::MAX - self.arrival_seq[slot]) as u128)
                        + 1;
                    if key > best_key {
                        best_key = key;
                        best_slot = slot;
                    }
                }
            }
        }
        (best_key != 0).then_some(best_slot)
    }
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Cycles,
    slab: CmdSlab,
    in_flight: usize,
    // Stats.
    reads: u64,
    writes: u64,
    bytes: u64,
    activations: u64,
    row_hits: u64,
    row_conflicts: u64,
    busy_cycles: Cycles,
    queued_total: u64,
    max_queue: u64,
    /// Sum of queue depths sampled at each enqueue (for average depth).
    depth_sum: u64,
    /// Queued commands per [`BlameClass`] (kept in lockstep with the slab
    /// so traced enqueues snapshot queue composition in O(1)).
    queued_by_class: [u64; 3],
    // Tracing-only state (empty when tracing is off).
    /// `(token, class)` of every in-flight command, for queue-composition
    /// snapshots. Completions remove the first matching token.
    live: Vec<(u64, BlameClass)>,
    /// In-flight commands per class (mirrors `live`).
    live_by_class: [u64; 3],
    /// Blame decompositions of traced commands started since the last
    /// [`MemDevice::take_cmd_traces`] drain.
    records: Vec<CmdTrace>,
}

impl Channel {
    fn new(banks: usize) -> Self {
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                    row_hits: 0,
                    row_conflicts: 0,
                    last_class: BlameClass::Background,
                };
                banks
            ],
            bus_free_at: 0,
            slab: CmdSlab::new(banks),
            in_flight: 0,
            reads: 0,
            writes: 0,
            bytes: 0,
            activations: 0,
            row_hits: 0,
            row_conflicts: 0,
            busy_cycles: 0,
            queued_total: 0,
            max_queue: 0,
            depth_sum: 0,
            queued_by_class: [0; 3],
            live: Vec::new(),
            live_by_class: [0; 3],
            records: Vec::new(),
        }
    }

    /// Queue a command. `seq` is the device-wide arrival sequence number —
    /// assigned by [`MemDevice::enqueue_traced`] sequentially, or mirrored
    /// by the parallel kernel's controller so deferred application is
    /// value-identical.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &mut self,
        amap: &AddrMap,
        demand_first: bool,
        tracing: bool,
        cmd: MemCmd,
        now: Cycles,
        class: BlameClass,
        tag: Option<TraceTag>,
        seq: u64,
    ) {
        let (bank, row) = amap.map(cmd.addr);
        let trace = if tracing {
            tag.map(|tag| {
                let mut ahead = [0u64; 3];
                for (i, a) in ahead.iter_mut().enumerate() {
                    *a = self.queued_by_class[i] + self.live_by_class[i];
                }
                TracedInfo { tag, ahead }
            })
        } else {
            None
        };
        let slot = self.slab.alloc_slot();
        let s = &mut self.slab;
        s.prio[slot] = if demand_first { cmd.priority } else { 0 };
        s.arrival_time[slot] = now;
        s.arrival_seq[slot] = seq;
        s.bank[slot] = bank;
        s.row[slot] = row;
        s.bytes[slot] = cmd.bytes;
        s.write[slot] = cmd.is_write;
        s.token[slot] = cmd.token;
        s.class[slot] = class;
        s.trace[slot] = trace;
        let hit = self.banks[bank as usize].open_row == Some(row);
        s.set_occupied(slot, hit);
        self.queued_by_class[class.idx()] += 1;
        self.queued_total += 1;
        self.max_queue = self.max_queue.max(self.slab.len as u64);
        self.depth_sum += self.slab.len as u64;
    }

    /// Start as many queued commands as pipelining allows, appending each
    /// (with its completion time) to `out`. `ch` is this channel's index,
    /// echoed into [`StartedCmd::channel`].
    fn pump(
        &mut self,
        timing: &DramTiming,
        tracing: bool,
        iv_pool: &mut Vec<Vec<SpanInterval>>,
        ch: usize,
        now: Cycles,
        out: &mut Vec<StartedCmd>,
    ) {
        while self.in_flight < PIPELINE_DEPTH {
            let Some(slot) = self.slab.pick(now) else { break };
            let (done_at, token) = self.start_slot(timing, tracing, iv_pool, now, slot);
            self.in_flight += 1;
            out.push(StartedCmd {
                done_at,
                token,
                channel: ch,
            });
        }
    }

    /// Retire one in-flight command (with its token when tracing, so the
    /// queue-composition bookkeeping can drop its live entry).
    fn complete(&mut self, tracing: bool, token: u64) {
        debug_assert!(self.in_flight > 0, "completion without in-flight command");
        self.in_flight -= 1;
        if tracing {
            if let Some(i) = self.live.iter().position(|&(t, _)| t == token) {
                let (_, class) = self.live.swap_remove(i);
                self.live_by_class[class.idx()] -= 1;
            }
        }
    }

    /// Compute timing for the picked slot, free it, mutate bank/bus state,
    /// return `(completion, token)`. When tracing, also records the
    /// command's blame decomposition: queue wait split across the classes
    /// ahead of it, bank-busy wait charged to the bank's previous occupant,
    /// row-conflict penalty, bus wait, and intrinsic service time — tiling
    /// `[arrival, data_end)` exactly.
    fn start_slot(
        &mut self,
        timing: &DramTiming,
        tracing: bool,
        iv_pool: &mut Vec<Vec<SpanInterval>>,
        now: Cycles,
        slot: usize,
    ) -> (Cycles, u64) {
        let s = &self.slab;
        let bank_idx = s.bank[slot] as usize;
        let row = s.row[slot];
        let cmd_bytes = s.bytes[slot];
        let is_write = s.write[slot];
        let token = s.token[slot];
        let class = s.class[slot];
        let trace = s.trace[slot];
        let arrival_time = s.arrival_time[slot];
        let burst = timing.burst_cycles(cmd_bytes);
        let bank = self.banks[bank_idx];

        // `bank.ready_at` is the earliest cycle the bank accepts its next
        // column command; CAS is pure latency so row hits pipeline at burst
        // (tCCD) granularity and a streaming bank saturates the bus.
        let t0 = now.max(bank.ready_at);
        let (prep, activated, row_hit, conflict) = match bank.open_row {
            Some(r) if r == row => (0, false, true, false),
            Some(_) => (timing.t_rp + timing.t_rcd, true, false, true),
            None => (timing.t_rcd, true, false, false),
        };
        let col_time = t0 + prep;
        let data_start = (col_time + timing.t_cas).max(self.bus_free_at);
        let data_end = data_start + burst;

        if tracing {
            if let Some(info) = trace {
                let mut iv: Vec<SpanInterval> =
                    iv_pool.pop().unwrap_or_else(|| Vec::with_capacity(6));
                if now > arrival_time {
                    if info.tag.token_stalled {
                        iv.push(SpanInterval {
                            cause: BlameCause::TokenStall,
                            start: arrival_time,
                            end: now,
                        });
                    } else {
                        iv.extend(split_queue_wait(arrival_time, now, info.ahead));
                    }
                }
                if t0 > now {
                    iv.push(SpanInterval {
                        cause: bank.last_class.queue_cause(),
                        start: now,
                        end: t0,
                    });
                }
                if prep > 0 {
                    iv.push(SpanInterval {
                        cause: if conflict { BlameCause::RowConflict } else { BlameCause::Service },
                        start: t0,
                        end: col_time,
                    });
                }
                iv.push(SpanInterval {
                    cause: BlameCause::Service,
                    start: col_time,
                    end: col_time + timing.t_cas,
                });
                if data_start > col_time + timing.t_cas {
                    iv.push(SpanInterval {
                        cause: BlameCause::BusBusy,
                        start: col_time + timing.t_cas,
                        end: data_start,
                    });
                }
                iv.push(SpanInterval {
                    cause: BlameCause::Service,
                    start: data_start,
                    end: data_end,
                });
                coalesce(&mut iv);
                self.records.push(CmdTrace { span: info.tag.span, intervals: iv });
            }
            self.banks[bank_idx].last_class = class;
            self.live.push((token, class));
            self.live_by_class[class.idx()] += 1;
        }

        self.slab.clear_slot(slot);
        self.queued_by_class[class.idx()] -= 1;
        self.banks[bank_idx].open_row = Some(row);
        self.banks[bank_idx].ready_at = col_time + burst;
        self.bus_free_at = data_end;
        // The open row changed (or was confirmed): refresh row-hit bits of
        // everything still queued on this bank.
        self.slab.rehit_bank(bank_idx, row);

        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.bytes += (cmd_bytes as u64).div_ceil(64) * 64;
        if activated {
            self.activations += 1;
        }
        if row_hit {
            self.row_hits += 1;
            self.banks[bank_idx].row_hits += 1;
        }
        if conflict {
            self.row_conflicts += 1;
            self.banks[bank_idx].row_conflicts += 1;
        }
        self.busy_cycles += burst;

        (data_end, token)
    }
}

/// Aggregate device statistics (summed over channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Row activations (closed-bank or row-conflict accesses).
    pub activations: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that found a different row open (precharge + activate).
    pub row_conflicts: u64,
    /// Cycles any bus spent transferring data (sum over channels).
    pub busy_cycles: Cycles,
    /// Commands ever enqueued.
    pub enqueued: u64,
    /// Peak pending-queue length observed on any channel.
    pub max_queue: u64,
}

/// Dense metric handles for one channel, interned once at system build
/// (see [`MemDevice::intern_metrics`]).
#[derive(Debug, Clone, Copy)]
struct ChannelMetricHandles {
    reads: CounterId,
    writes: CounterId,
    bytes: CounterId,
    activations: CounterId,
    row_hits: CounterId,
    row_conflicts: CounterId,
    busy_cycles: CounterId,
    enqueued: CounterId,
    queue_peak: GaugeId,
    queue_avg: GaugeId,
}

/// Interned metric handles for a whole device: one
/// [`ChannelMetricHandles`] per channel, in channel order. Produced by
/// [`MemDevice::intern_metrics`], consumed by [`MemDevice::record_metrics`].
#[derive(Debug, Clone)]
pub struct MemMetricHandles {
    channels: Vec<ChannelMetricHandles>,
}

/// A multi-channel DRAM device.
#[derive(Debug)]
pub struct MemDevice {
    timing: DramTiming,
    amap: AddrMap,
    channels: Vec<Channel>,
    seq: u64,
    /// Latency-optimised scheduling: honour command priorities (demand
    /// first). Bandwidth-optimised devices (the slow tier behind the cache)
    /// ignore priorities and run FR-FCFS.
    demand_first: bool,
    /// Request-span tracing (see `h2_sim_core::trace_span`). Off by
    /// default; when off, no tracing state is touched and timing is
    /// byte-identical to a device that never heard of tracing.
    tracing: bool,
    /// Recycled interval buffers for traced-command blame decompositions:
    /// [`Self::start_slot`] pops one per traced command instead of
    /// allocating, and [`Self::reclaim_traces`] returns drained buffers
    /// here. Steady state allocates nothing.
    iv_pool: Vec<Vec<SpanInterval>>,
}

impl MemDevice {
    /// Create a latency-optimised device (honours priorities).
    pub fn new(timing: DramTiming, channels: usize) -> Self {
        Self::with_scheduling(timing, channels, true)
    }

    /// Create a device with an explicit scheduling flavour.
    pub fn with_scheduling(timing: DramTiming, channels: usize, demand_first: bool) -> Self {
        assert!(channels > 0, "device needs at least one channel");
        let banks = timing.banks_per_channel;
        let amap = AddrMap::new(timing.row_bytes, banks as u64);
        Self {
            timing,
            amap,
            channels: (0..channels).map(|_| Channel::new(banks)).collect(),
            seq: 0,
            demand_first,
            tracing: false,
            iv_pool: Vec::new(),
        }
    }

    /// Enable or disable span tracing. Tracing never alters command
    /// timing — it only records a blame decomposition for traced commands.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The device's timing parameters.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Total pending (queued, unstarted) commands on `ch`.
    pub fn queue_len(&self, ch: usize) -> usize {
        self.channels[ch].slab.len
    }

    /// Device-level consistency check for invariant monitors: per-channel
    /// in-flight occupancy must respect the pipeline depth (release-build
    /// counterpart of the `debug_assert` in [`Self::on_complete`]), and the
    /// pending-slab bitmaps must agree with each other.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (ch, c) in self.channels.iter().enumerate() {
            if c.in_flight > PIPELINE_DEPTH {
                return Err(format!(
                    "channel {ch}: {} commands in flight exceeds pipeline depth {PIPELINE_DEPTH}",
                    c.in_flight
                ));
            }
            let s = &c.slab;
            let pop: usize = s.occ.iter().map(|w| w.count_ones() as usize).sum();
            if pop != s.len {
                return Err(format!(
                    "channel {ch}: slab occupancy {pop} disagrees with len {}",
                    s.len
                ));
            }
            for (w, &word) in s.occ.iter().enumerate() {
                if s.hit[w] & !word != 0 {
                    return Err(format!("channel {ch}: hit bit set on free slot (word {w})"));
                }
                let sbit = s.summary[w / 64] >> (w % 64) & 1;
                if (word != 0) != (sbit == 1) {
                    return Err(format!("channel {ch}: summary bit stale for word {w}"));
                }
                let mut union = 0u64;
                for b in &s.bank_slots {
                    union |= b[w];
                }
                if union != word {
                    return Err(format!(
                        "channel {ch}: bank slot bitmaps disagree with occupancy (word {w})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Enqueue a command on channel `ch` at time `now`. Call [`Self::pump`]
    /// afterwards to start whatever the scheduler allows.
    pub fn enqueue(&mut self, ch: usize, cmd: MemCmd, now: Cycles) {
        self.enqueue_traced(ch, cmd, now, BlameClass::Background, None);
    }

    /// [`Self::enqueue`] with tracing context: the requester `class` (used
    /// for queue-composition snapshots and bank blame when tracing is on)
    /// and, for the demand command of a sampled transaction, its span tag.
    pub fn enqueue_traced(
        &mut self,
        ch: usize,
        cmd: MemCmd,
        now: Cycles,
        class: BlameClass,
        tag: Option<TraceTag>,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.channels[ch].enqueue(
            &self.amap,
            self.demand_first,
            self.tracing,
            cmd,
            now,
            class,
            tag,
            seq,
        );
    }

    /// Start as many commands as pipelining allows on channel `ch`,
    /// appending each started command (with completion time) to `out`.
    pub fn pump(&mut self, ch: usize, now: Cycles, out: &mut Vec<StartedCmd>) {
        self.channels[ch].pump(&self.timing, self.tracing, &mut self.iv_pool, ch, now, out);
    }

    /// Notify the device that a previously started command on `ch` finished.
    /// Follow with [`Self::pump`] to start successors.
    pub fn on_complete(&mut self, ch: usize) {
        self.channels[ch].complete(false, 0);
    }

    /// [`Self::on_complete`] with the finished command's token, so the
    /// tracing queue-composition bookkeeping can retire it.
    pub fn on_complete_traced(&mut self, ch: usize, token: u64) {
        let tracing = self.tracing;
        self.channels[ch].complete(tracing, token);
    }

    /// The device-wide arrival sequence the next [`Self::enqueue_traced`]
    /// will assign. The parallel kernel's controller snapshots this to
    /// mirror sequence assignment for deferred [`ChanOp::Enqueue`] ops.
    pub fn next_arrival_seq(&self) -> u64 {
        self.seq
    }

    /// Detach channel `ch` as an independently executable [`ChannelShard`]
    /// (parallel kernel). The device keeps a bankless placeholder so
    /// channel indices stay stable; aggregate views ([`Self::stats`],
    /// [`Self::collect_metrics`], [`Self::check_invariants`], ...) are
    /// only meaningful again after [`Self::attach_shard`].
    pub fn detach_shard(&mut self, ch: usize) -> ChannelShard {
        let channel = std::mem::replace(&mut self.channels[ch], Channel::new(0));
        ChannelShard {
            ch_index: ch,
            channel,
            timing: self.timing.clone(),
            amap: self.amap,
            demand_first: self.demand_first,
            tracing: self.tracing,
            iv_pool: Vec::new(),
            pump_scratch: Vec::new(),
        }
    }

    /// Re-install a shard detached with [`Self::detach_shard`].
    pub fn attach_shard(&mut self, shard: ChannelShard) {
        self.channels[shard.ch_index] = shard.channel;
    }

    /// Drain the blame decompositions of traced commands started on `ch`
    /// since the last drain.
    pub fn take_cmd_traces(&mut self, ch: usize) -> Vec<CmdTrace> {
        std::mem::take(&mut self.channels[ch].records)
    }

    /// Allocation-free variant of [`Self::take_cmd_traces`]: swap the
    /// channel's record buffer with a caller-provided empty one (typically
    /// the one handed back by the last [`Self::reclaim_traces`]), so the
    /// channel keeps its capacity. Pair with `reclaim_traces` after the
    /// records are absorbed.
    pub fn take_traces_into(&mut self, ch: usize, mut swap: Vec<CmdTrace>) -> Vec<CmdTrace> {
        debug_assert!(swap.is_empty(), "swap-in buffer must be empty");
        std::mem::swap(&mut self.channels[ch].records, &mut swap);
        swap
    }

    /// Return drained trace records: their interval buffers go back to the
    /// pool for reuse by later traced commands, and the emptied outer
    /// vector is handed back for the next [`Self::take_traces_into`].
    pub fn reclaim_traces(&mut self, mut recs: Vec<CmdTrace>) -> Vec<CmdTrace> {
        for rec in recs.drain(..) {
            let mut iv = rec.intervals;
            iv.clear();
            self.iv_pool.push(iv);
        }
        recs
    }

    /// Whether channel `ch` has undrained trace records. Lets callers skip
    /// the [`Self::take_traces_into`]/[`Self::reclaim_traces`] round trip
    /// on the common no-records path (only sampled commands produce
    /// records, so with 1-in-N span sampling most drains would be empty).
    #[inline]
    pub fn has_traces(&self, ch: usize) -> bool {
        !self.channels[ch].records.is_empty()
    }

    /// Aggregate statistics over all channels.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for c in &self.channels {
            s.reads += c.reads;
            s.writes += c.writes;
            s.bytes += c.bytes;
            s.activations += c.activations;
            s.row_hits += c.row_hits;
            s.row_conflicts += c.row_conflicts;
            s.busy_cycles += c.busy_cycles;
            s.enqueued += c.queued_total;
            s.max_queue = s.max_queue.max(c.max_queue);
        }
        s
    }

    /// Emit per-channel (and optionally per-bank) telemetry into `m`.
    ///
    /// Counter names are relative (`ch0.reads`, `ch0.bank3.row_hits`);
    /// callers choose the absolute scope (`mem.fast`, `mem.slow`). Queue
    /// depth gauges report the arrival-averaged and peak pending-queue
    /// lengths per channel. `per_bank` adds one hit/conflict counter pair
    /// per bank — useful in end-of-run totals, too wide for epoch frames.
    pub fn collect_metrics(&self, m: &mut h2_sim_core::ScopedMetrics<'_>, per_bank: bool) {
        for (i, c) in self.channels.iter().enumerate() {
            let mut ch = m.scoped(&format!("ch{i}"));
            ch.inc("reads", c.reads);
            ch.inc("writes", c.writes);
            ch.inc("bytes", c.bytes);
            ch.inc("activations", c.activations);
            ch.inc("row_hits", c.row_hits);
            ch.inc("row_conflicts", c.row_conflicts);
            ch.inc("busy_cycles", c.busy_cycles);
            ch.inc("enqueued", c.queued_total);
            ch.set_gauge("queue_peak", c.max_queue as f64);
            ch.set_gauge(
                "queue_avg",
                if c.queued_total > 0 {
                    c.depth_sum as f64 / c.queued_total as f64
                } else {
                    0.0
                },
            );
            if per_bank {
                for (b, bank) in c.banks.iter().enumerate() {
                    let mut bk = ch.scoped(&format!("bank{b}"));
                    bk.inc("row_hits", bank.row_hits);
                    bk.inc("row_conflicts", bank.row_conflicts);
                }
            }
        }
    }

    /// Intern this device's per-channel metric names (the `per_bank =
    /// false` subset of [`Self::collect_metrics`], same names, same order)
    /// under `prefix`, returning dense handles for
    /// [`Self::record_metrics`]. Called once at system build; every
    /// subsequent collection is an indexed store with no hashing or
    /// formatting.
    pub fn intern_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) -> MemMetricHandles {
        MemMetricHandles {
            channels: (0..self.channels.len())
                .map(|i| {
                    let p = format!("{prefix}.ch{i}");
                    ChannelMetricHandles {
                        reads: reg.intern_counter(&format!("{p}.reads")),
                        writes: reg.intern_counter(&format!("{p}.writes")),
                        bytes: reg.intern_counter(&format!("{p}.bytes")),
                        activations: reg.intern_counter(&format!("{p}.activations")),
                        row_hits: reg.intern_counter(&format!("{p}.row_hits")),
                        row_conflicts: reg.intern_counter(&format!("{p}.row_conflicts")),
                        busy_cycles: reg.intern_counter(&format!("{p}.busy_cycles")),
                        enqueued: reg.intern_counter(&format!("{p}.enqueued")),
                        queue_peak: reg.intern_gauge(&format!("{p}.queue_peak")),
                        queue_avg: reg.intern_gauge(&format!("{p}.queue_avg")),
                    }
                })
                .collect(),
        }
    }

    /// Store the current cumulative channel statistics through handles
    /// interned by [`Self::intern_metrics`]. Value-identical to a fresh
    /// `collect_metrics(_, false)` pass.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, h: &MemMetricHandles) {
        for (c, hc) in self.channels.iter().zip(h.channels.iter()) {
            reg.set_counter(hc.reads, c.reads);
            reg.set_counter(hc.writes, c.writes);
            reg.set_counter(hc.bytes, c.bytes);
            reg.set_counter(hc.activations, c.activations);
            reg.set_counter(hc.row_hits, c.row_hits);
            reg.set_counter(hc.row_conflicts, c.row_conflicts);
            reg.set_counter(hc.busy_cycles, c.busy_cycles);
            reg.set_counter(hc.enqueued, c.queued_total);
            reg.set_gauge_id(hc.queue_peak, c.max_queue as f64);
            reg.set_gauge_id(
                hc.queue_avg,
                if c.queued_total > 0 {
                    c.depth_sum as f64 / c.queued_total as f64
                } else {
                    0.0
                },
            );
        }
    }

    /// Per-channel bytes transferred (for partitioning/balance checks).
    pub fn channel_bytes(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.bytes).collect()
    }

    /// Energy consumed so far, given the elapsed simulated window.
    pub fn energy(&self, elapsed: Cycles) -> EnergyBreakdown {
        let s = self.stats();
        EnergyBreakdown::from_counts(
            &self.timing.energy,
            s.bytes,
            s.activations,
            self.channels.len(),
            elapsed,
        )
    }

    /// Average achieved bandwidth in GB/s over `elapsed` cycles.
    pub fn achieved_gbs(&self, elapsed: Cycles) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        h2_sim_core::units::bandwidth_gbs(self.stats().bytes, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingPreset;
    use h2_sim_core::trace_span::SpanId;

    fn dev(preset: TimingPreset, ch: usize) -> MemDevice {
        MemDevice::new(preset.timing(), ch)
    }

    fn run_one(dev: &mut MemDevice, ch: usize, now: Cycles, cmd: MemCmd) -> Cycles {
        dev.enqueue(ch, cmd, now);
        let mut out = Vec::new();
        dev.pump(ch, now, &mut out);
        assert_eq!(out.len(), 1);
        dev.on_complete(ch);
        out[0].done_at
    }

    fn rd(addr: u64, bytes: u32) -> MemCmd {
        MemCmd {
            addr,
            bytes,
            is_write: false,
            priority: 0,
            token: 0,
        }
    }

    #[test]
    fn closed_bank_read_latency() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        let t = TimingPreset::Ddr4.timing();
        let done = run_one(&mut d, 0, 100, rd(0, 64));
        assert_eq!(done, 100 + t.t_rcd + t.t_cas + t.burst_64b);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        let first = run_one(&mut d, 0, 0, rd(0, 64));
        // Same row: only CAS + burst after bank ready.
        let hit = run_one(&mut d, 0, first, rd(64, 64));
        assert_eq!(hit - first, t.t_cas + t.burst_64b);
        // Different row, same bank: full conflict penalty.
        let conflict_addr = t.row_bytes * t.banks_per_channel as u64; // same bank, next row
        let miss = run_one(&mut d, 0, hit, rd(conflict_addr, 64));
        assert_eq!(miss - hit, t.t_rp + t.t_rcd + t.t_cas + t.burst_64b);
    }

    #[test]
    fn bus_serialises_bursts() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        // Two reads to different banks, same instant: second's burst must
        // start after the first's burst ends.
        d.enqueue(0, rd(0, 64), 0);
        d.enqueue(0, rd(t.row_bytes, 64), 0); // different bank
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        assert_eq!(out.len(), 2);
        let a = out[0].done_at;
        let b = out[1].done_at;
        assert!(b >= a + t.burst_64b, "bursts overlap: {a} {b}");
        // But bank prep overlapped: total < 2 sequential closed accesses.
        assert!(b < 2 * (t.t_rcd + t.t_cas + t.burst_64b));
    }

    #[test]
    fn priority_wins_over_age() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        // Fill the pipeline so later enqueues stay queued.
        for i in 0..PIPELINE_DEPTH as u64 {
            d.enqueue(
                0,
                MemCmd {
                    token: i,
                    ..rd(i << 20, 64)
                },
                0,
            );
        }
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        assert_eq!(out.len(), PIPELINE_DEPTH);
        out.clear();
        // Now queue a low-priority old command and a high-priority young one.
        d.enqueue(
            0,
            MemCmd {
                token: 100,
                priority: 0,
                ..rd(0, 64)
            },
            50,
        );
        d.enqueue(
            0,
            MemCmd {
                token: 200,
                priority: 3,
                ..rd(64, 64)
            },
            50,
        );
        d.on_complete(0);
        d.pump(0, 50, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 200, "high priority must be served first");
    }

    #[test]
    fn fcfs_among_equal_priority() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        for i in 0..PIPELINE_DEPTH as u64 {
            d.enqueue(0, MemCmd { token: i, ..rd(0, 64) }, 0);
        }
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        out.clear();
        // Two equal-priority commands to closed banks: older first.
        let t = TimingPreset::Ddr4.timing();
        d.enqueue(0, MemCmd { token: 10, ..rd(3 * t.row_bytes, 64) }, 10);
        d.enqueue(0, MemCmd { token: 11, ..rd(5 * t.row_bytes, 64) }, 10);
        d.on_complete(0);
        d.pump(0, 10, &mut out);
        assert_eq!(out[0].token, 10);
    }

    #[test]
    fn streaming_saturates_bus_bandwidth() {
        // Issue a long run of sequential 256 B reads; achieved bandwidth
        // should approach the peak.
        let t = TimingPreset::Hbm2eSuper.timing();
        let mut d = dev(TimingPreset::Hbm2eSuper, 1);
        let mut now = 0;
        let n = 2000u64;
        let mut done_times = Vec::new();
        let mut out = Vec::new();
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut inflight: Vec<Cycles> = Vec::new();
        while completed < n {
            while issued < n && inflight.len() < 32 {
                d.enqueue(0, rd(issued * 256, 256), now);
                issued += 1;
                d.pump(0, now, &mut out);
                for s in out.drain(..) {
                    inflight.push(s.done_at);
                }
            }
            inflight.sort_unstable();
            let t0 = inflight.remove(0);
            now = t0;
            d.on_complete(0);
            d.pump(0, now, &mut out);
            for s in out.drain(..) {
                inflight.push(s.done_at);
            }
            completed += 1;
            done_times.push(t0);
        }
        let elapsed = *done_times.last().unwrap();
        let gbs = d.achieved_gbs(elapsed);
        assert!(
            gbs > 0.8 * t.peak_gbs(),
            "streaming should near-saturate: {gbs:.1} vs peak {:.1}",
            t.peak_gbs()
        );
    }

    #[test]
    fn stats_count_reads_writes_bytes() {
        let mut d = dev(TimingPreset::Ddr4, 2);
        run_one(&mut d, 0, 0, rd(0, 64));
        run_one(
            &mut d,
            1,
            0,
            MemCmd {
                is_write: true,
                ..rd(128, 256)
            },
        );
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes, 64 + 256);
        assert_eq!(s.enqueued, 2);
        assert_eq!(d.channel_bytes(), vec![64, 256]);
    }

    #[test]
    fn completion_never_before_arrival() {
        let mut d = dev(TimingPreset::Hbm2eSuper, 1);
        let done = run_one(&mut d, 0, 12345, rd(0, 64));
        assert!(done > 12345);
    }

    #[test]
    fn telemetry_counts_hits_and_conflicts_per_bank() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        let first = run_one(&mut d, 0, 0, rd(0, 64));
        let hit = run_one(&mut d, 0, first, rd(64, 64)); // same row: hit
        let conflict_addr = t.row_bytes * t.banks_per_channel as u64; // same bank, next row
        run_one(&mut d, 0, hit, rd(conflict_addr, 64));
        let s = d.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
        let mut reg = h2_sim_core::MetricsRegistry::new(true);
        d.collect_metrics(&mut reg.scoped("mem"), true);
        assert_eq!(reg.counter("mem.ch0.reads"), 3);
        assert_eq!(reg.counter("mem.ch0.row_hits"), 1);
        assert_eq!(reg.counter("mem.ch0.bank0.row_hits"), 1);
        assert_eq!(reg.counter("mem.ch0.bank0.row_conflicts"), 1);
        assert!(reg.gauge("mem.ch0.queue_avg").is_some());
    }

    #[test]
    fn tracing_decomposition_tiles_lifetime() {
        use h2_sim_core::trace_span::{tiles_exactly, SpanId, TraceTag};
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        d.set_tracing(true);
        // Occupy the bank+bus first so the traced command really waits.
        let mut out = Vec::new();
        d.enqueue_traced(0, rd(0, 256), 0, BlameClass::GpuDemand, None);
        d.pump(0, 0, &mut out);
        let tag = TraceTag { span: SpanId(7), token_stalled: false };
        d.enqueue_traced(
            0,
            MemCmd { token: 9, ..rd(64, 64) },
            5,
            BlameClass::CpuDemand,
            Some(tag),
        );
        d.pump(0, 5, &mut out);
        assert_eq!(out.len(), 2);
        let done = out[1].done_at;
        let recs = d.take_cmd_traces(0);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].span, SpanId(7));
        assert!(
            tiles_exactly(&recs[0].intervals, 5, done),
            "decomposition must tile [5, {done}): {:?}",
            recs[0].intervals
        );
        // Second drain is empty; completions retire live entries.
        assert!(d.take_cmd_traces(0).is_empty());
        d.on_complete_traced(0, 0);
        d.on_complete_traced(0, 9);
        // Cycle-identical to the untraced path.
        let mut plain = dev(TimingPreset::Ddr4, 1);
        plain.enqueue(0, rd(0, 256), 0);
        let mut pout = Vec::new();
        plain.pump(0, 0, &mut pout);
        plain.enqueue(0, MemCmd { token: 9, ..rd(64, 64) }, 5);
        plain.pump(0, 5, &mut pout);
        assert_eq!(pout[1].done_at, done);
        let _ = t;
    }

    #[test]
    fn energy_accumulates() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        run_one(&mut d, 0, 0, rd(0, 256));
        let e = d.energy(1000);
        assert!(e.dynamic_rw_j > 0.0);
        assert!(e.act_pre_j > 0.0);
        assert!(e.static_j > 0.0);
    }

    #[test]
    fn addr_map_shift_path_matches_division() {
        for (row_bytes, banks) in [(4096u64, 64u64), (8192, 32), (4096, 16)] {
            let m = AddrMap::new(row_bytes, banks);
            assert!(m.pow2);
            for addr in [0u64, 63, 64, 4095, 4096, 1 << 20, 0xDEAD_BEEF, u64::MAX / 2] {
                let rg = addr / row_bytes;
                assert_eq!(m.map(addr), ((rg % banks) as u32, rg / banks), "addr {addr:#x}");
            }
        }
        // Non-power-of-two fallback stays exact too.
        let m = AddrMap::new(3000, 12);
        assert!(!m.pow2);
        let rg = 123_456_789u64 / 3000;
        assert_eq!(m.map(123_456_789), ((rg % 12) as u32, rg / 12));
    }

    /// Slab slots are reused lowest-index-first and never shift queued
    /// commands around; draining and refilling must not grow the slab.
    #[test]
    fn slab_reuses_slots_without_growth() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        let mut out = Vec::new();
        for round in 0..100u64 {
            for i in 0..8 {
                d.enqueue(0, MemCmd { token: round * 8 + i, ..rd(i * 64, 64) }, round);
            }
            d.pump(0, round, &mut out);
            for _ in 0..out.len() {
                d.on_complete(0);
            }
            out.clear();
        }
        assert_eq!(d.channels[0].slab.occ.len(), 1, "slab must stay at one word");
        d.check_invariants().unwrap();
    }

    /// The bitmap scan must agree with a straight reference scan of the
    /// original `(prio, row_hit, oldest)` key on randomised deep queues.
    #[test]
    fn pick_matches_reference_scan() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        // Fill the pipeline so everything stays queued; then check pick
        // against the reference at several probe times.
        for i in 0..PIPELINE_DEPTH as u64 {
            d.enqueue(0, MemCmd { token: i, ..rd(i << 20, 64) }, 0);
        }
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        for i in 0..200u64 {
            let r = rng();
            d.enqueue(
                0,
                MemCmd {
                    addr: (r % 4096) * t.row_bytes / 4,
                    bytes: 64,
                    is_write: r & 1 == 0,
                    priority: (r % 3) as u8,
                    token: 1000 + i,
                },
                i / 4,
            );
        }
        for now in [0u64, 50, 100, 260, 400] {
            let c = &d.channels[0];
            let s = &c.slab;
            // Reference: linear scan over occupied slots with tuple keys.
            let mut best: Option<(u8, bool, u64, usize)> = None;
            for (w, &word) in s.occ.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let slot = w * 64 + b;
                    let hit = c.banks[s.bank[slot] as usize].open_row == Some(s.row[slot]);
                    let prio = if now.saturating_sub(s.arrival_time[slot]) > AGE_CAP {
                        u8::MAX
                    } else {
                        s.prio[slot]
                    };
                    let key = (prio, hit, u64::MAX - s.arrival_seq[slot]);
                    if best.is_none()
                        || (key.0, key.1, key.2)
                            > (best.unwrap().0, best.unwrap().1, best.unwrap().2)
                    {
                        best = Some((key.0, key.1, key.2, slot));
                    }
                }
            }
            assert_eq!(s.pick(now), best.map(|(.., slot)| slot), "now={now}");
        }
        d.check_invariants().unwrap();
    }

    /// Deep alternating enqueue/drain traffic across banks keeps every
    /// bitmap invariant intact.
    #[test]
    fn slab_invariants_under_churn() {
        let t = TimingPreset::Hbm2eSuper.timing();
        let mut d = dev(TimingPreset::Hbm2eSuper, 2);
        let mut out = Vec::new();
        let mut inflight = [0usize; 2];
        for i in 0..500u64 {
            let ch = (i % 2) as usize;
            d.enqueue(
                ch,
                MemCmd {
                    addr: (i * 37) % (t.row_bytes * 256),
                    bytes: 64,
                    is_write: i % 3 == 0,
                    priority: (i % 2) as u8,
                    token: i,
                },
                i,
            );
            d.pump(ch, i, &mut out);
            inflight[ch] += out.len();
            out.clear();
            if inflight[ch] > 4 {
                d.on_complete(ch);
                inflight[ch] -= 1;
            }
            if i % 61 == 0 {
                d.check_invariants().unwrap();
            }
        }
        d.check_invariants().unwrap();
    }

    /// The parallel kernel's deferred [`ChanOp`] application must be the
    /// same computation as the immediate device calls: drive an immediate
    /// device and a detached-shard twin through one randomized op stream
    /// (with tracing on) and demand identical starts, completion times,
    /// blame decompositions, and final state.
    #[test]
    fn shard_deferred_ops_match_immediate_calls() {
        fn next(rng: &mut u64, m: u64) -> u64 {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*rng >> 33) % m
        }

        let mut a = dev(TimingPreset::Ddr4, 2);
        let mut b = dev(TimingPreset::Ddr4, 2);
        a.set_tracing(true);
        b.set_tracing(true);
        let mut shards: Vec<ChannelShard> = (0..2).map(|ch| b.detach_shard(ch)).collect();
        let mut dev_seq = b.next_arrival_seq();
        // The controller-side occupancy mirror (pump-cardinality prediction).
        let mut mirror_q = [0usize; 2];
        let mut mirror_f = [0usize; 2];
        // In-flight tokens per channel in start order, completed FIFO.
        let mut live_a: [std::collections::VecDeque<u64>; 2] = Default::default();
        let mut live_b: [std::collections::VecDeque<u64>; 2] = Default::default();

        let mut started_a: Vec<(usize, Cycles, u64)> = Vec::new();
        let mut started_b: Vec<(usize, Cycles, u64)> = Vec::new();
        let mut seqs_b: Vec<u64> = Vec::new();
        let mut traces_a: Vec<CmdTrace> = Vec::new();
        let mut traces_b: Vec<CmdTrace> = Vec::new();

        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut now: Cycles = 0;
        let mut token = 0u64;
        let mut out = Vec::new();
        let mut sb: Vec<SeqStarted> = Vec::new();
        let mut next_evq_seq = 0u64;

        // One shard-side pump with the mirrored cardinality, if any.
        macro_rules! pump_b {
            ($ch:expr) => {{
                let expect = mirror_q[$ch].min(PIPELINE_DEPTH - mirror_f[$ch]) as u32;
                if expect > 0 {
                    let seq_base = next_evq_seq;
                    next_evq_seq += expect as u64;
                    shards[$ch].apply(
                        &ChanOp::Pump { now, seq_base, expect },
                        &mut sb,
                        &mut traces_b,
                    );
                    mirror_q[$ch] -= expect as usize;
                    mirror_f[$ch] += expect as usize;
                }
                for s in sb.drain(..) {
                    started_b.push(($ch, s.cmd.done_at, s.cmd.token));
                    seqs_b.push(s.seq);
                    live_b[$ch].push_back(s.cmd.token);
                }
            }};
        }

        for _ in 0..3000 {
            now += next(&mut rng, 9);
            let ch = next(&mut rng, 2) as usize;
            if next(&mut rng, 4) < 2 {
                // Mirror of `issue_mem`: enqueue, then pump.
                let tag = if next(&mut rng, 4) == 0 {
                    Some(TraceTag {
                        span: SpanId(token),
                        token_stalled: next(&mut rng, 2) == 0,
                    })
                } else {
                    None
                };
                let class = match next(&mut rng, 3) {
                    0 => BlameClass::CpuDemand,
                    1 => BlameClass::GpuDemand,
                    _ => BlameClass::Background,
                };
                let cmd = MemCmd {
                    addr: next(&mut rng, 1 << 22) << 6,
                    bytes: 64,
                    is_write: next(&mut rng, 2) == 0,
                    priority: next(&mut rng, 3) as u8,
                    token,
                };
                token += 1;
                a.enqueue_traced(ch, cmd, now, class, tag);
                out.clear();
                a.pump(ch, now, &mut out);
                for s in &out {
                    started_a.push((ch, s.done_at, s.token));
                    live_a[ch].push_back(s.token);
                }
                traces_a.extend(a.take_cmd_traces(ch));

                let seq = dev_seq;
                dev_seq += 1;
                shards[ch].apply(
                    &ChanOp::Enqueue { cmd, now, class, tag, seq },
                    &mut sb,
                    &mut traces_b,
                );
                mirror_q[ch] += 1;
                pump_b!(ch);
            } else {
                // Mirror of the `MemDone` arm: complete oldest, then pump.
                let Some(tok) = live_a[ch].pop_front() else { continue };
                a.on_complete_traced(ch, tok);
                out.clear();
                a.pump(ch, now, &mut out);
                for s in &out {
                    started_a.push((ch, s.done_at, s.token));
                    live_a[ch].push_back(s.token);
                }
                traces_a.extend(a.take_cmd_traces(ch));

                let tok_b = live_b[ch].pop_front().unwrap();
                assert_eq!(tok, tok_b, "start order diverged");
                shards[ch].apply(&ChanOp::Complete { token: tok_b }, &mut sb, &mut traces_b);
                mirror_f[ch] -= 1;
                pump_b!(ch);
            }
        }

        assert!(started_a.len() > 500, "too little traffic to be meaningful");
        assert_eq!(started_a, started_b, "started commands diverged");
        // Reserved completion sequences are handed out densely in op order.
        assert_eq!(seqs_b, (0..started_b.len() as u64).collect::<Vec<_>>());
        assert_eq!(traces_a.len(), traces_b.len());
        for (ta, tb) in traces_a.iter().zip(&traces_b) {
            assert_eq!(ta.span.0, tb.span.0);
            assert_eq!(ta.intervals, tb.intervals);
        }
        for shard in shards {
            b.attach_shard(shard);
        }
        assert_eq!(a.stats(), b.stats());
        for ch in 0..2 {
            assert_eq!(a.queue_len(ch), b.queue_len(ch));
        }
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }
}
