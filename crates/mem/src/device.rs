//! The DRAM device model: channels, banks, open rows, a shared data bus per
//! channel, and an FR-FCFS-like command scheduler with request priorities.
//!
//! # Model
//!
//! Each channel serves one data burst at a time on its bus, but up to
//! [`PIPELINE_DEPTH`] commands may be "started" concurrently so that bank
//! preparation (precharge/activate) of the next command overlaps the current
//! burst — a lightweight approximation of bank-level parallelism that
//! preserves the two first-order effects the paper depends on: bus bandwidth
//! saturation under streaming (GPU) traffic and row-miss latency under
//! random (CPU) traffic.
//!
//! The device never touches the event queue. `enqueue` + `pump` return
//! started commands with their completion times; the caller schedules those
//! and calls [`MemDevice::on_complete`] when they fire, then pumps again.

use crate::energy::EnergyBreakdown;
use crate::timing::DramTiming;
use h2_sim_core::trace_span::{
    coalesce, split_queue_wait, BlameCause, BlameClass, CmdTrace, SpanInterval, TraceTag,
};
use h2_sim_core::units::Cycles;
use h2_sim_core::{CounterId, GaugeId, MetricsRegistry};

/// Waiting time after which a queued command is escalated past all
/// priorities (starvation guard for priority schedulers).
pub const AGE_CAP: Cycles = 250;

/// How many commands a channel may have in flight at once. This must cover
/// the CAS latency / burst-time ratio (~6 for both presets) so that a
/// streaming bank keeps the data bus saturated; bank prep of later commands
/// overlaps earlier bursts.
pub const PIPELINE_DEPTH: usize = 48;

/// A command presented to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCmd {
    /// Device byte address (bank/row are derived from it).
    pub addr: u64,
    /// Transfer size in bytes (rounded up to 64 B beats internally).
    pub bytes: u32,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Scheduling priority; higher wins (HAShCache prioritises CPU = 1).
    pub priority: u8,
    /// Opaque caller token, returned on completion.
    pub token: u64,
}

/// A command the scheduler has started, with its completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedCmd {
    /// Absolute cycle at which the data transfer finishes.
    pub done_at: Cycles,
    /// The caller's token.
    pub token: u64,
    /// Channel that served it (for the caller's bookkeeping).
    pub channel: usize,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycles,
    // Per-bank locality stats (telemetry).
    row_hits: u64,
    row_conflicts: u64,
    /// Class of the last command started on this bank (tracing only):
    /// blames bank-busy waits on whoever occupied the bank.
    last_class: BlameClass,
}

/// Tracing context attached to the demand command of a sampled
/// transaction: its span tag plus the channel's queue composition (by
/// [`BlameClass`]) snapshotted at enqueue.
#[derive(Debug, Clone, Copy)]
struct TracedInfo {
    tag: TraceTag,
    ahead: [u64; 3],
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    cmd: MemCmd,
    arrival_seq: u64,
    arrival_time: Cycles,
    /// Requester class; only meaningful when tracing is enabled.
    class: BlameClass,
    trace: Option<TracedInfo>,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Cycles,
    queue: Vec<Pending>,
    in_flight: usize,
    // Stats.
    reads: u64,
    writes: u64,
    bytes: u64,
    activations: u64,
    row_hits: u64,
    row_conflicts: u64,
    busy_cycles: Cycles,
    queued_total: u64,
    max_queue: u64,
    /// Sum of queue depths sampled at each enqueue (for average depth).
    depth_sum: u64,
    // Tracing-only state (empty when tracing is off).
    /// `(token, class)` of every in-flight command, for queue-composition
    /// snapshots. Completions remove the first matching token.
    live: Vec<(u64, BlameClass)>,
    /// Blame decompositions of traced commands started since the last
    /// [`MemDevice::take_cmd_traces`] drain.
    records: Vec<CmdTrace>,
}

impl Channel {
    fn new(banks: usize) -> Self {
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                    row_hits: 0,
                    row_conflicts: 0,
                    last_class: BlameClass::Background,
                };
                banks
            ],
            bus_free_at: 0,
            queue: Vec::with_capacity(32),
            in_flight: 0,
            reads: 0,
            writes: 0,
            bytes: 0,
            activations: 0,
            row_hits: 0,
            row_conflicts: 0,
            busy_cycles: 0,
            queued_total: 0,
            max_queue: 0,
            depth_sum: 0,
            live: Vec::new(),
            records: Vec::new(),
        }
    }
}

/// Aggregate device statistics (summed over channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Row activations (closed-bank or row-conflict accesses).
    pub activations: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that found a different row open (precharge + activate).
    pub row_conflicts: u64,
    /// Cycles any bus spent transferring data (sum over channels).
    pub busy_cycles: Cycles,
    /// Commands ever enqueued.
    pub enqueued: u64,
    /// Peak pending-queue length observed on any channel.
    pub max_queue: u64,
}

/// Dense metric handles for one channel, interned once at system build
/// (see [`MemDevice::intern_metrics`]).
#[derive(Debug, Clone, Copy)]
struct ChannelMetricHandles {
    reads: CounterId,
    writes: CounterId,
    bytes: CounterId,
    activations: CounterId,
    row_hits: CounterId,
    row_conflicts: CounterId,
    busy_cycles: CounterId,
    enqueued: CounterId,
    queue_peak: GaugeId,
    queue_avg: GaugeId,
}

/// Interned metric handles for a whole device: one
/// [`ChannelMetricHandles`] per channel, in channel order. Produced by
/// [`MemDevice::intern_metrics`], consumed by [`MemDevice::record_metrics`].
#[derive(Debug, Clone)]
pub struct MemMetricHandles {
    channels: Vec<ChannelMetricHandles>,
}

/// A multi-channel DRAM device.
#[derive(Debug)]
pub struct MemDevice {
    timing: DramTiming,
    channels: Vec<Channel>,
    seq: u64,
    /// Latency-optimised scheduling: honour command priorities (demand
    /// first). Bandwidth-optimised devices (the slow tier behind the cache)
    /// ignore priorities and run FR-FCFS.
    demand_first: bool,
    /// Request-span tracing (see `h2_sim_core::trace_span`). Off by
    /// default; when off, no tracing state is touched and timing is
    /// byte-identical to a device that never heard of tracing.
    tracing: bool,
    /// Recycled interval buffers for traced-command blame decompositions:
    /// [`Self::start`] pops one per traced command instead of allocating,
    /// and [`Self::reclaim_traces`] returns drained buffers here. Steady
    /// state allocates nothing.
    iv_pool: Vec<Vec<SpanInterval>>,
}

impl MemDevice {
    /// Create a latency-optimised device (honours priorities).
    pub fn new(timing: DramTiming, channels: usize) -> Self {
        Self::with_scheduling(timing, channels, true)
    }

    /// Create a device with an explicit scheduling flavour.
    pub fn with_scheduling(timing: DramTiming, channels: usize, demand_first: bool) -> Self {
        assert!(channels > 0, "device needs at least one channel");
        let banks = timing.banks_per_channel;
        Self {
            timing,
            channels: (0..channels).map(|_| Channel::new(banks)).collect(),
            seq: 0,
            demand_first,
            tracing: false,
            iv_pool: Vec::new(),
        }
    }

    /// Enable or disable span tracing. Tracing never alters command
    /// timing — it only records a blame decomposition for traced commands.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The device's timing parameters.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Total pending (queued, unstarted) commands on `ch`.
    pub fn queue_len(&self, ch: usize) -> usize {
        self.channels[ch].queue.len()
    }

    /// Device-level consistency check for invariant monitors: per-channel
    /// in-flight occupancy must respect the pipeline depth (release-build
    /// counterpart of the `debug_assert` in [`Self::on_complete`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (ch, c) in self.channels.iter().enumerate() {
            if c.in_flight > PIPELINE_DEPTH {
                return Err(format!(
                    "channel {ch}: {} commands in flight exceeds pipeline depth {PIPELINE_DEPTH}",
                    c.in_flight
                ));
            }
        }
        Ok(())
    }

    /// Enqueue a command on channel `ch` at time `now`. Call [`Self::pump`]
    /// afterwards to start whatever the scheduler allows.
    pub fn enqueue(&mut self, ch: usize, cmd: MemCmd, now: Cycles) {
        self.enqueue_traced(ch, cmd, now, BlameClass::Background, None);
    }

    /// [`Self::enqueue`] with tracing context: the requester `class` (used
    /// for queue-composition snapshots and bank blame when tracing is on)
    /// and, for the demand command of a sampled transaction, its span tag.
    pub fn enqueue_traced(
        &mut self,
        ch: usize,
        cmd: MemCmd,
        now: Cycles,
        class: BlameClass,
        tag: Option<TraceTag>,
    ) {
        let c = &mut self.channels[ch];
        let trace = if self.tracing {
            tag.map(|tag| {
                let mut ahead = [0u64; 3];
                for p in &c.queue {
                    ahead[p.class.idx()] += 1;
                }
                for &(_, cl) in &c.live {
                    ahead[cl.idx()] += 1;
                }
                TracedInfo { tag, ahead }
            })
        } else {
            None
        };
        c.queued_total += 1;
        c.queue.push(Pending {
            cmd,
            arrival_seq: self.seq,
            arrival_time: now,
            class,
            trace,
        });
        c.max_queue = c.max_queue.max(c.queue.len() as u64);
        c.depth_sum += c.queue.len() as u64;
        self.seq += 1;
    }

    /// Start as many commands as pipelining allows on channel `ch`,
    /// appending each started command (with completion time) to `out`.
    pub fn pump(&mut self, ch: usize, now: Cycles, out: &mut Vec<StartedCmd>) {
        while self.channels[ch].in_flight < PIPELINE_DEPTH {
            let Some(idx) = self.pick(ch, now) else { break };
            let pending = self.channels[ch].queue.swap_remove(idx);
            let done_at = self.start(ch, now, pending);
            self.channels[ch].in_flight += 1;
            out.push(StartedCmd {
                done_at,
                token: pending.cmd.token,
                channel: ch,
            });
        }
    }

    /// Notify the device that a previously started command on `ch` finished.
    /// Follow with [`Self::pump`] to start successors.
    pub fn on_complete(&mut self, ch: usize) {
        let c = &mut self.channels[ch];
        debug_assert!(c.in_flight > 0, "completion without in-flight command");
        c.in_flight -= 1;
    }

    /// [`Self::on_complete`] with the finished command's token, so the
    /// tracing queue-composition bookkeeping can retire it.
    pub fn on_complete_traced(&mut self, ch: usize, token: u64) {
        self.on_complete(ch);
        if self.tracing {
            let c = &mut self.channels[ch];
            if let Some(i) = c.live.iter().position(|&(t, _)| t == token) {
                c.live.swap_remove(i);
            }
        }
    }

    /// Drain the blame decompositions of traced commands started on `ch`
    /// since the last drain.
    pub fn take_cmd_traces(&mut self, ch: usize) -> Vec<CmdTrace> {
        std::mem::take(&mut self.channels[ch].records)
    }

    /// Allocation-free variant of [`Self::take_cmd_traces`]: swap the
    /// channel's record buffer with a caller-provided empty one (typically
    /// the one handed back by the last [`Self::reclaim_traces`]), so the
    /// channel keeps its capacity. Pair with `reclaim_traces` after the
    /// records are absorbed.
    pub fn take_traces_into(&mut self, ch: usize, mut swap: Vec<CmdTrace>) -> Vec<CmdTrace> {
        debug_assert!(swap.is_empty(), "swap-in buffer must be empty");
        std::mem::swap(&mut self.channels[ch].records, &mut swap);
        swap
    }

    /// Return drained trace records: their interval buffers go back to the
    /// pool for reuse by later traced commands, and the emptied outer
    /// vector is handed back for the next [`Self::take_traces_into`].
    pub fn reclaim_traces(&mut self, mut recs: Vec<CmdTrace>) -> Vec<CmdTrace> {
        for rec in recs.drain(..) {
            let mut iv = rec.intervals;
            iv.clear();
            self.iv_pool.push(iv);
        }
        recs
    }

    /// FR-FCFS-lite: pick the queued command with the highest priority,
    /// then preferring open-row hits, then the oldest. Commands that have
    /// waited longer than [`AGE_CAP`] are escalated to the top priority so
    /// a stream of prioritised requests (e.g. HAShCache's CPU priority)
    /// cannot starve the other class indefinitely.
    fn pick(&self, ch: usize, now: Cycles) -> Option<usize> {
        let c = &self.channels[ch];
        let mut best: Option<(usize, u8, bool, u64)> = None;
        for (i, p) in c.queue.iter().enumerate() {
            let (bank, row) = self.map(p.cmd.addr);
            let hit = c.banks[bank].open_row == Some(row);
            let base = if self.demand_first { p.cmd.priority } else { 0 };
            let prio = if now.saturating_sub(p.arrival_time) > AGE_CAP {
                u8::MAX
            } else {
                base
            };
            let key = (prio, hit, u64::MAX - p.arrival_seq);
            match best {
                None => best = Some((i, key.0, key.1, key.2)),
                Some((_, bp, bh, ba)) if (key.0, key.1, key.2) > (bp, bh, ba) => {
                    best = Some((i, key.0, key.1, key.2))
                }
                _ => {}
            }
        }
        best.map(|(i, ..)| i)
    }

    /// Map a device address to (bank index, row id).
    #[inline]
    fn map(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.timing.row_bytes;
        let bank = (row_global % self.channels[0].banks.len() as u64) as usize;
        let row = row_global / self.channels[0].banks.len() as u64;
        (bank, row)
    }

    /// Compute timing for a picked command, mutate bank/bus state, return
    /// completion. When tracing, also records the command's blame
    /// decomposition: queue wait split across the classes ahead of it,
    /// bank-busy wait charged to the bank's previous occupant, row-conflict
    /// penalty, bus wait, and intrinsic service time — tiling
    /// `[arrival, data_end)` exactly.
    fn start(&mut self, ch: usize, now: Cycles, p: Pending) -> Cycles {
        let cmd = p.cmd;
        let (bank_idx, row) = self.map(cmd.addr);
        let burst = self.timing.burst_cycles(cmd.bytes);
        let c = &mut self.channels[ch];
        let bank = c.banks[bank_idx];

        // `bank.ready_at` is the earliest cycle the bank accepts its next
        // column command; CAS is pure latency so row hits pipeline at burst
        // (tCCD) granularity and a streaming bank saturates the bus.
        let t0 = now.max(bank.ready_at);
        let (prep, activated, row_hit, conflict) = match bank.open_row {
            Some(r) if r == row => (0, false, true, false),
            Some(_) => (self.timing.t_rp + self.timing.t_rcd, true, false, true),
            None => (self.timing.t_rcd, true, false, false),
        };
        let col_time = t0 + prep;
        let data_start = (col_time + self.timing.t_cas).max(c.bus_free_at);
        let data_end = data_start + burst;

        if self.tracing {
            if let Some(info) = p.trace {
                let mut iv: Vec<SpanInterval> =
                    self.iv_pool.pop().unwrap_or_else(|| Vec::with_capacity(6));
                if now > p.arrival_time {
                    if info.tag.token_stalled {
                        iv.push(SpanInterval {
                            cause: BlameCause::TokenStall,
                            start: p.arrival_time,
                            end: now,
                        });
                    } else {
                        iv.extend(split_queue_wait(p.arrival_time, now, info.ahead));
                    }
                }
                if t0 > now {
                    iv.push(SpanInterval {
                        cause: bank.last_class.queue_cause(),
                        start: now,
                        end: t0,
                    });
                }
                if prep > 0 {
                    iv.push(SpanInterval {
                        cause: if conflict { BlameCause::RowConflict } else { BlameCause::Service },
                        start: t0,
                        end: col_time,
                    });
                }
                iv.push(SpanInterval {
                    cause: BlameCause::Service,
                    start: col_time,
                    end: col_time + self.timing.t_cas,
                });
                if data_start > col_time + self.timing.t_cas {
                    iv.push(SpanInterval {
                        cause: BlameCause::BusBusy,
                        start: col_time + self.timing.t_cas,
                        end: data_start,
                    });
                }
                iv.push(SpanInterval {
                    cause: BlameCause::Service,
                    start: data_start,
                    end: data_end,
                });
                coalesce(&mut iv);
                c.records.push(CmdTrace { span: info.tag.span, intervals: iv });
            }
            c.banks[bank_idx].last_class = p.class;
            c.live.push((cmd.token, p.class));
        }

        c.banks[bank_idx].open_row = Some(row);
        c.banks[bank_idx].ready_at = col_time + burst;
        c.bus_free_at = data_end;

        if cmd.is_write {
            c.writes += 1;
        } else {
            c.reads += 1;
        }
        c.bytes += (cmd.bytes as u64).div_ceil(64) * 64;
        if activated {
            c.activations += 1;
        }
        if row_hit {
            c.row_hits += 1;
            c.banks[bank_idx].row_hits += 1;
        }
        if conflict {
            c.row_conflicts += 1;
            c.banks[bank_idx].row_conflicts += 1;
        }
        c.busy_cycles += burst;

        data_end
    }

    /// Aggregate statistics over all channels.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for c in &self.channels {
            s.reads += c.reads;
            s.writes += c.writes;
            s.bytes += c.bytes;
            s.activations += c.activations;
            s.row_hits += c.row_hits;
            s.row_conflicts += c.row_conflicts;
            s.busy_cycles += c.busy_cycles;
            s.enqueued += c.queued_total;
            s.max_queue = s.max_queue.max(c.max_queue);
        }
        s
    }

    /// Emit per-channel (and optionally per-bank) telemetry into `m`.
    ///
    /// Counter names are relative (`ch0.reads`, `ch0.bank3.row_hits`);
    /// callers choose the absolute scope (`mem.fast`, `mem.slow`). Queue
    /// depth gauges report the arrival-averaged and peak pending-queue
    /// lengths per channel. `per_bank` adds one hit/conflict counter pair
    /// per bank — useful in end-of-run totals, too wide for epoch frames.
    pub fn collect_metrics(&self, m: &mut h2_sim_core::ScopedMetrics<'_>, per_bank: bool) {
        for (i, c) in self.channels.iter().enumerate() {
            let mut ch = m.scoped(&format!("ch{i}"));
            ch.inc("reads", c.reads);
            ch.inc("writes", c.writes);
            ch.inc("bytes", c.bytes);
            ch.inc("activations", c.activations);
            ch.inc("row_hits", c.row_hits);
            ch.inc("row_conflicts", c.row_conflicts);
            ch.inc("busy_cycles", c.busy_cycles);
            ch.inc("enqueued", c.queued_total);
            ch.set_gauge("queue_peak", c.max_queue as f64);
            ch.set_gauge(
                "queue_avg",
                if c.queued_total > 0 {
                    c.depth_sum as f64 / c.queued_total as f64
                } else {
                    0.0
                },
            );
            if per_bank {
                for (b, bank) in c.banks.iter().enumerate() {
                    let mut bk = ch.scoped(&format!("bank{b}"));
                    bk.inc("row_hits", bank.row_hits);
                    bk.inc("row_conflicts", bank.row_conflicts);
                }
            }
        }
    }

    /// Intern this device's per-channel metric names (the `per_bank =
    /// false` subset of [`Self::collect_metrics`], same names, same order)
    /// under `prefix`, returning dense handles for
    /// [`Self::record_metrics`]. Called once at system build; every
    /// subsequent collection is an indexed store with no hashing or
    /// formatting.
    pub fn intern_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) -> MemMetricHandles {
        MemMetricHandles {
            channels: (0..self.channels.len())
                .map(|i| {
                    let p = format!("{prefix}.ch{i}");
                    ChannelMetricHandles {
                        reads: reg.intern_counter(&format!("{p}.reads")),
                        writes: reg.intern_counter(&format!("{p}.writes")),
                        bytes: reg.intern_counter(&format!("{p}.bytes")),
                        activations: reg.intern_counter(&format!("{p}.activations")),
                        row_hits: reg.intern_counter(&format!("{p}.row_hits")),
                        row_conflicts: reg.intern_counter(&format!("{p}.row_conflicts")),
                        busy_cycles: reg.intern_counter(&format!("{p}.busy_cycles")),
                        enqueued: reg.intern_counter(&format!("{p}.enqueued")),
                        queue_peak: reg.intern_gauge(&format!("{p}.queue_peak")),
                        queue_avg: reg.intern_gauge(&format!("{p}.queue_avg")),
                    }
                })
                .collect(),
        }
    }

    /// Store the current cumulative channel statistics through handles
    /// interned by [`Self::intern_metrics`]. Value-identical to a fresh
    /// `collect_metrics(_, false)` pass.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, h: &MemMetricHandles) {
        for (c, hc) in self.channels.iter().zip(h.channels.iter()) {
            reg.set_counter(hc.reads, c.reads);
            reg.set_counter(hc.writes, c.writes);
            reg.set_counter(hc.bytes, c.bytes);
            reg.set_counter(hc.activations, c.activations);
            reg.set_counter(hc.row_hits, c.row_hits);
            reg.set_counter(hc.row_conflicts, c.row_conflicts);
            reg.set_counter(hc.busy_cycles, c.busy_cycles);
            reg.set_counter(hc.enqueued, c.queued_total);
            reg.set_gauge_id(hc.queue_peak, c.max_queue as f64);
            reg.set_gauge_id(
                hc.queue_avg,
                if c.queued_total > 0 {
                    c.depth_sum as f64 / c.queued_total as f64
                } else {
                    0.0
                },
            );
        }
    }

    /// Per-channel bytes transferred (for partitioning/balance checks).
    pub fn channel_bytes(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.bytes).collect()
    }

    /// Energy consumed so far, given the elapsed simulated window.
    pub fn energy(&self, elapsed: Cycles) -> EnergyBreakdown {
        let s = self.stats();
        EnergyBreakdown::from_counts(
            &self.timing.energy,
            s.bytes,
            s.activations,
            self.channels.len(),
            elapsed,
        )
    }

    /// Average achieved bandwidth in GB/s over `elapsed` cycles.
    pub fn achieved_gbs(&self, elapsed: Cycles) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        h2_sim_core::units::bandwidth_gbs(self.stats().bytes, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingPreset;

    fn dev(preset: TimingPreset, ch: usize) -> MemDevice {
        MemDevice::new(preset.timing(), ch)
    }

    fn run_one(dev: &mut MemDevice, ch: usize, now: Cycles, cmd: MemCmd) -> Cycles {
        dev.enqueue(ch, cmd, now);
        let mut out = Vec::new();
        dev.pump(ch, now, &mut out);
        assert_eq!(out.len(), 1);
        dev.on_complete(ch);
        out[0].done_at
    }

    fn rd(addr: u64, bytes: u32) -> MemCmd {
        MemCmd {
            addr,
            bytes,
            is_write: false,
            priority: 0,
            token: 0,
        }
    }

    #[test]
    fn closed_bank_read_latency() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        let t = TimingPreset::Ddr4.timing();
        let done = run_one(&mut d, 0, 100, rd(0, 64));
        assert_eq!(done, 100 + t.t_rcd + t.t_cas + t.burst_64b);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        let first = run_one(&mut d, 0, 0, rd(0, 64));
        // Same row: only CAS + burst after bank ready.
        let hit = run_one(&mut d, 0, first, rd(64, 64));
        assert_eq!(hit - first, t.t_cas + t.burst_64b);
        // Different row, same bank: full conflict penalty.
        let conflict_addr = t.row_bytes * t.banks_per_channel as u64; // same bank, next row
        let miss = run_one(&mut d, 0, hit, rd(conflict_addr, 64));
        assert_eq!(miss - hit, t.t_rp + t.t_rcd + t.t_cas + t.burst_64b);
    }

    #[test]
    fn bus_serialises_bursts() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        // Two reads to different banks, same instant: second's burst must
        // start after the first's burst ends.
        d.enqueue(0, rd(0, 64), 0);
        d.enqueue(0, rd(t.row_bytes, 64), 0); // different bank
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        assert_eq!(out.len(), 2);
        let a = out[0].done_at;
        let b = out[1].done_at;
        assert!(b >= a + t.burst_64b, "bursts overlap: {a} {b}");
        // But bank prep overlapped: total < 2 sequential closed accesses.
        assert!(b < 2 * (t.t_rcd + t.t_cas + t.burst_64b));
    }

    #[test]
    fn priority_wins_over_age() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        // Fill the pipeline so later enqueues stay queued.
        for i in 0..PIPELINE_DEPTH as u64 {
            d.enqueue(
                0,
                MemCmd {
                    token: i,
                    ..rd(i << 20, 64)
                },
                0,
            );
        }
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        assert_eq!(out.len(), PIPELINE_DEPTH);
        out.clear();
        // Now queue a low-priority old command and a high-priority young one.
        d.enqueue(
            0,
            MemCmd {
                token: 100,
                priority: 0,
                ..rd(0, 64)
            },
            50,
        );
        d.enqueue(
            0,
            MemCmd {
                token: 200,
                priority: 3,
                ..rd(64, 64)
            },
            50,
        );
        d.on_complete(0);
        d.pump(0, 50, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 200, "high priority must be served first");
    }

    #[test]
    fn fcfs_among_equal_priority() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        for i in 0..PIPELINE_DEPTH as u64 {
            d.enqueue(0, MemCmd { token: i, ..rd(0, 64) }, 0);
        }
        let mut out = Vec::new();
        d.pump(0, 0, &mut out);
        out.clear();
        // Two equal-priority commands to closed banks: older first.
        let t = TimingPreset::Ddr4.timing();
        d.enqueue(0, MemCmd { token: 10, ..rd(3 * t.row_bytes, 64) }, 10);
        d.enqueue(0, MemCmd { token: 11, ..rd(5 * t.row_bytes, 64) }, 10);
        d.on_complete(0);
        d.pump(0, 10, &mut out);
        assert_eq!(out[0].token, 10);
    }

    #[test]
    fn streaming_saturates_bus_bandwidth() {
        // Issue a long run of sequential 256 B reads; achieved bandwidth
        // should approach the peak.
        let t = TimingPreset::Hbm2eSuper.timing();
        let mut d = dev(TimingPreset::Hbm2eSuper, 1);
        let mut now = 0;
        let n = 2000u64;
        let mut done_times = Vec::new();
        let mut out = Vec::new();
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut inflight: Vec<Cycles> = Vec::new();
        while completed < n {
            while issued < n && inflight.len() < 32 {
                d.enqueue(0, rd(issued * 256, 256), now);
                issued += 1;
                d.pump(0, now, &mut out);
                for s in out.drain(..) {
                    inflight.push(s.done_at);
                }
            }
            inflight.sort_unstable();
            let t0 = inflight.remove(0);
            now = t0;
            d.on_complete(0);
            d.pump(0, now, &mut out);
            for s in out.drain(..) {
                inflight.push(s.done_at);
            }
            completed += 1;
            done_times.push(t0);
        }
        let elapsed = *done_times.last().unwrap();
        let gbs = d.achieved_gbs(elapsed);
        assert!(
            gbs > 0.8 * t.peak_gbs(),
            "streaming should near-saturate: {gbs:.1} vs peak {:.1}",
            t.peak_gbs()
        );
    }

    #[test]
    fn stats_count_reads_writes_bytes() {
        let mut d = dev(TimingPreset::Ddr4, 2);
        run_one(&mut d, 0, 0, rd(0, 64));
        run_one(
            &mut d,
            1,
            0,
            MemCmd {
                is_write: true,
                ..rd(128, 256)
            },
        );
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes, 64 + 256);
        assert_eq!(s.enqueued, 2);
        assert_eq!(d.channel_bytes(), vec![64, 256]);
    }

    #[test]
    fn completion_never_before_arrival() {
        let mut d = dev(TimingPreset::Hbm2eSuper, 1);
        let done = run_one(&mut d, 0, 12345, rd(0, 64));
        assert!(done > 12345);
    }

    #[test]
    fn telemetry_counts_hits_and_conflicts_per_bank() {
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        let first = run_one(&mut d, 0, 0, rd(0, 64));
        let hit = run_one(&mut d, 0, first, rd(64, 64)); // same row: hit
        let conflict_addr = t.row_bytes * t.banks_per_channel as u64; // same bank, next row
        run_one(&mut d, 0, hit, rd(conflict_addr, 64));
        let s = d.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
        let mut reg = h2_sim_core::MetricsRegistry::new(true);
        d.collect_metrics(&mut reg.scoped("mem"), true);
        assert_eq!(reg.counter("mem.ch0.reads"), 3);
        assert_eq!(reg.counter("mem.ch0.row_hits"), 1);
        assert_eq!(reg.counter("mem.ch0.bank0.row_hits"), 1);
        assert_eq!(reg.counter("mem.ch0.bank0.row_conflicts"), 1);
        assert!(reg.gauge("mem.ch0.queue_avg").is_some());
    }

    #[test]
    fn tracing_decomposition_tiles_lifetime() {
        use h2_sim_core::trace_span::{tiles_exactly, SpanId, TraceTag};
        let t = TimingPreset::Ddr4.timing();
        let mut d = dev(TimingPreset::Ddr4, 1);
        d.set_tracing(true);
        // Occupy the bank+bus first so the traced command really waits.
        let mut out = Vec::new();
        d.enqueue_traced(0, rd(0, 256), 0, BlameClass::GpuDemand, None);
        d.pump(0, 0, &mut out);
        let tag = TraceTag { span: SpanId(7), token_stalled: false };
        d.enqueue_traced(
            0,
            MemCmd { token: 9, ..rd(64, 64) },
            5,
            BlameClass::CpuDemand,
            Some(tag),
        );
        d.pump(0, 5, &mut out);
        assert_eq!(out.len(), 2);
        let done = out[1].done_at;
        let recs = d.take_cmd_traces(0);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].span, SpanId(7));
        assert!(
            tiles_exactly(&recs[0].intervals, 5, done),
            "decomposition must tile [5, {done}): {:?}",
            recs[0].intervals
        );
        // Second drain is empty; completions retire live entries.
        assert!(d.take_cmd_traces(0).is_empty());
        d.on_complete_traced(0, 0);
        d.on_complete_traced(0, 9);
        // Cycle-identical to the untraced path.
        let mut plain = dev(TimingPreset::Ddr4, 1);
        plain.enqueue(0, rd(0, 256), 0);
        let mut pout = Vec::new();
        plain.pump(0, 0, &mut pout);
        plain.enqueue(0, MemCmd { token: 9, ..rd(64, 64) }, 5);
        plain.pump(0, 5, &mut pout);
        assert_eq!(pout[1].done_at, done);
        let _ = t;
    }

    #[test]
    fn energy_accumulates() {
        let mut d = dev(TimingPreset::Ddr4, 1);
        run_one(&mut d, 0, 0, rd(0, 256));
        let e = d.energy(1000);
        assert!(e.dynamic_rw_j > 0.0);
        assert!(e.act_pre_j > 0.0);
        assert!(e.static_j > 0.0);
    }
}
