//! The two-tier hybrid memory layer (§III-A, §IV of the paper).
//!
//! The whole memory space is organised set-associatively: fast and slow
//! memory are divided into the same number of sets; each set has `assoc`
//! fast blocks (ways). A hardware remap table — stored in fast memory and
//! front-ended by an on-chip remap cache — translates physical block
//! addresses to their current tier. Misses trigger block-granularity
//! migrations whose traffic amplification (Fig 4) is the central cost the
//! partitioning policies manage.
//!
//! * [`types`] — request classes, tiers, modes, geometry.
//! * [`remap`] — the remap table (tags, dirty/owner/alloc metadata, LRU).
//! * [`policy`] — the [`policy::PartitionPolicy`] trait every design
//!   (Hydrogen and all baselines) implements.
//! * [`hmc`] — the hybrid memory controller: a transaction state machine
//!   that turns LLC misses into DRAM command sequences.

pub mod hmc;
pub mod policy;
pub mod remap;
pub mod types;

pub use hmc::{Hmc, HmcEvent, HmcOutput, HmcStats};
pub use policy::{EpochSample, PartitionPolicy, PolicyParams, TokenFlows};
pub use remap::{RemapTable, WayMeta};
pub use types::{HybridConfig, Mode, ReqClass, Tier};
