//! Common types and geometry for the hybrid memory layer.

use h2_sim_core::units::{Cycles, KIB, MIB};

/// Who issued a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqClass {
    /// A CPU core (latency-sensitive).
    Cpu,
    /// The GPU (bandwidth-sensitive, latency-tolerant).
    Gpu,
}

impl ReqClass {
    /// Index 0 (CPU) / 1 (GPU) for array-backed per-class stats.
    pub fn idx(self) -> usize {
        match self {
            ReqClass::Cpu => 0,
            ReqClass::Gpu => 1,
        }
    }
}

/// Memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// HBM (the DRAM cache / first tier).
    Fast,
    /// DDR (capacity tier).
    Slow,
}

/// Hybrid memory organisation mode (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Fast memory is a hardware-managed cache; slow memory always holds a
    /// home copy of every block.
    Cache,
    /// Both tiers form one flat address space; a block's only copy lives in
    /// exactly one tier and migrations are swaps.
    Flat,
}

/// Static configuration of the hybrid memory system.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Migration block size in bytes (paper default 256).
    pub block_bytes: u64,
    /// Fast ways per set (paper default 4).
    pub assoc: usize,
    /// Number of fast-memory superchannels (paper default 4).
    pub fast_channels: usize,
    /// Number of slow-memory channels (paper default 4).
    pub slow_channels: usize,
    /// Fast-memory capacity in bytes (typically footprint / 8).
    pub fast_capacity: u64,
    /// Cache or flat mode.
    pub mode: Mode,
    /// On-chip remap cache capacity in bytes (paper default 256 kB).
    pub remap_cache_bytes: u64,
    /// HAShCache-style chaining: on a primary-set miss, probe one chained
    /// set (pseudo-associativity for direct-mapped organisations).
    pub chaining: bool,
    /// Extra tag-probe latency in cycles added to every fast access
    /// (used when scaling HAShCache to higher associativities, Fig 11).
    pub extra_tag_latency: Cycles,
    /// Suppress the DRAM traffic of fast-memory swaps (the `Ideal` swap
    /// variant of Fig 7a); metadata still moves.
    pub free_swaps: bool,
    /// Concurrent migration/swap transactions the controller can buffer;
    /// misses beyond this bypass (hardware backpressure on background
    /// traffic).
    pub migration_buffers: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            block_bytes: 256,
            assoc: 4,
            fast_channels: 4,
            slow_channels: 4,
            fast_capacity: 32 * MIB,
            mode: Mode::Cache,
            remap_cache_bytes: 256 * KIB,
            chaining: false,
            extra_tag_latency: 0,
            free_swaps: false,
            migration_buffers: 96,
        }
    }
}

/// `x / d` strength-reduced to a shift when `d` is a power of two.
///
/// The divisor is almost never a compile-time constant here (geometry lives
/// in config fields), but every paper configuration uses power-of-two block
/// sizes, set counts and channel counts, and a hardware divider costs an
/// order of magnitude more than `tzcnt + shr`. These helpers sit on the
/// per-transaction hot path (several calls per memory access); the fallback
/// keeps non-power-of-two sweeps exact.
#[inline(always)]
fn fast_div(x: u64, d: u64) -> u64 {
    if d.is_power_of_two() {
        x >> d.trailing_zeros()
    } else {
        x / d
    }
}

/// `x % d` strength-reduced to a mask when `d` is a power of two.
#[inline(always)]
fn fast_rem(x: u64, d: u64) -> u64 {
    if d.is_power_of_two() {
        x & (d - 1)
    } else {
        x % d
    }
}

impl HybridConfig {
    /// Number of sets implied by capacity, block size and associativity.
    pub fn num_sets(&self) -> u64 {
        let sets = fast_div(self.fast_capacity, self.block_bytes * self.assoc as u64);
        assert!(sets > 0, "fast capacity too small");
        sets
    }

    /// Block id of a byte address.
    pub fn block_of(&self, addr: u64) -> u64 {
        fast_div(addr, self.block_bytes)
    }

    /// Set index of a block id.
    pub fn set_of_block(&self, block: u64) -> u64 {
        fast_rem(block, self.num_sets())
    }

    /// Tag of a block id within its set.
    pub fn tag_of_block(&self, block: u64) -> u64 {
        fast_div(block, self.num_sets())
    }

    /// Reconstruct a block id from (set, tag).
    pub fn block_from(&self, set: u64, tag: u64) -> u64 {
        tag * self.num_sets() + set
    }

    /// Slow-memory channel of a block (address-interleaved).
    pub fn slow_channel_of(&self, block: u64) -> usize {
        fast_rem(block, self.slow_channels as u64) as usize
    }

    /// Chained set for HAShCache pseudo-associativity.
    pub fn chain_set(&self, set: u64) -> u64 {
        let n = self.num_sets();
        fast_rem(set ^ (n / 2).max(1), n)
    }

    /// Device byte address of a block in the slow tier (its home).
    pub fn slow_addr_of_block(&self, block: u64) -> u64 {
        block * self.block_bytes
    }

    /// Device byte address of a fast way. Ways of the same set are spread
    /// across rows so that way→channel mappings control banks cleanly.
    pub fn fast_addr_of(&self, set: u64, way: usize) -> u64 {
        (set * self.assoc as u64 + way as u64) * self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_roundtrip() {
        let cfg = HybridConfig::default();
        let sets = cfg.num_sets();
        assert_eq!(sets, 32 * MIB / (256 * 4));
        for &addr in &[0u64, 256, 1 << 20, (13 << 20) + 512] {
            let b = cfg.block_of(addr);
            let s = cfg.set_of_block(b);
            let t = cfg.tag_of_block(b);
            assert_eq!(cfg.block_from(s, t), b);
            assert!(s < sets);
        }
    }

    #[test]
    fn block_sizes_scale_sets() {
        let mut cfg = HybridConfig::default();
        let s256 = cfg.num_sets();
        cfg.block_bytes = 2048;
        assert_eq!(cfg.num_sets(), s256 / 8);
        cfg.block_bytes = 64;
        assert_eq!(cfg.num_sets(), s256 * 4);
    }

    #[test]
    fn chain_set_differs_and_is_involution() {
        let cfg = HybridConfig::default();
        for set in [0u64, 1, 999, cfg.num_sets() - 1] {
            let c = cfg.chain_set(set);
            assert_ne!(c, set);
            assert!(c < cfg.num_sets());
            assert_eq!(cfg.chain_set(c), set);
        }
    }

    #[test]
    fn slow_channels_interleave() {
        let cfg = HybridConfig::default();
        let chans: Vec<usize> = (0..8).map(|b| cfg.slow_channel_of(b)).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn class_indices() {
        assert_eq!(ReqClass::Cpu.idx(), 0);
        assert_eq!(ReqClass::Gpu.idx(), 1);
    }
}
