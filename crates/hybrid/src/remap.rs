//! The remap table: per-set, per-way metadata of the hybrid memory.
//!
//! Each fast way of each set records the tag of the block it holds, its
//! dirtiness, which class (CPU/GPU) owns it, an LRU stamp, and a hotness
//! counter used by Hydrogen's fast-memory swap. The table is a dense array:
//! `sets * assoc` entries.

use crate::types::{HybridConfig, ReqClass};

/// Metadata of one fast way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayMeta {
    /// Tag of the resident block (valid only if `valid`).
    pub tag: u64,
    /// Whether a block is resident.
    pub valid: bool,
    /// Whether the resident block differs from its slow-tier home copy.
    pub dirty: bool,
    /// Class that owns the resident block.
    pub owner: ReqClass,
    /// LRU stamp (monotone access counter).
    pub stamp: u64,
    /// Saturating hotness counter (halved on decay).
    pub hotness: u8,
}

impl Default for WayMeta {
    fn default() -> Self {
        Self {
            tag: 0,
            valid: false,
            dirty: false,
            owner: ReqClass::Cpu,
            stamp: 0,
            hotness: 0,
        }
    }
}

/// Dense remap table for all sets.
#[derive(Debug)]
pub struct RemapTable {
    assoc: usize,
    ways: Vec<WayMeta>,
    tick: u64,
}

impl RemapTable {
    /// Allocate the table for `cfg`'s geometry.
    pub fn new(cfg: &HybridConfig) -> Self {
        let n = cfg.num_sets() as usize * cfg.assoc;
        Self {
            assoc: cfg.assoc,
            ways: vec![WayMeta::default(); n],
            tick: 0,
        }
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        set as usize * self.assoc
    }

    /// Immutable view of a set's ways.
    pub fn set_view(&self, set: u64) -> &[WayMeta] {
        let b = self.base(set);
        &self.ways[b..b + self.assoc]
    }

    /// Find the way holding `tag` in `set`, if resident.
    pub fn lookup(&self, set: u64, tag: u64) -> Option<usize> {
        self.set_view(set)
            .iter()
            .position(|w| w.valid && w.tag == tag)
    }

    /// Touch a way on access: refresh LRU, bump hotness, set dirty on write.
    pub fn touch(&mut self, set: u64, way: usize, is_write: bool) {
        self.tick += 1;
        let i = self.base(set) + way;
        let w = &mut self.ways[i];
        debug_assert!(w.valid);
        w.stamp = self.tick;
        w.hotness = w.hotness.saturating_add(1);
        w.dirty |= is_write;
    }

    /// [`Self::lookup`] and [`Self::touch`] fused into one pass over the
    /// set, returning the hit way and its owner class. The common-hit
    /// access path walks the set exactly once: find, refresh LRU/hotness/
    /// dirty, and read the owner for the misplacement check without
    /// re-indexing. Value-identical to `lookup` followed by `touch` (tags
    /// are unique within a set, so the first match is the only match).
    pub fn lookup_touch(
        &mut self,
        set: u64,
        tag: u64,
        is_write: bool,
    ) -> Option<(usize, ReqClass)> {
        let b = self.base(set);
        let way = self.ways[b..b + self.assoc]
            .iter()
            .position(|w| w.valid && w.tag == tag)?;
        self.tick += 1;
        let w = &mut self.ways[b + way];
        w.stamp = self.tick;
        w.hotness = w.hotness.saturating_add(1);
        w.dirty |= is_write;
        Some((way, w.owner))
    }

    /// Install a block into `way`, returning the displaced block's
    /// `(tag, dirty, owner)` if a valid block was evicted.
    pub fn fill(
        &mut self,
        set: u64,
        way: usize,
        tag: u64,
        owner: ReqClass,
        dirty: bool,
    ) -> Option<(u64, bool, ReqClass)> {
        self.tick += 1;
        let i = self.base(set) + way;
        let w = &mut self.ways[i];
        let victim = if w.valid {
            Some((w.tag, w.dirty, w.owner))
        } else {
            None
        };
        *w = WayMeta {
            tag,
            valid: true,
            dirty,
            owner,
            stamp: self.tick,
            hotness: 1,
        };
        victim
    }

    /// Invalidate a way, returning the dropped block's `(tag, dirty, owner)`.
    pub fn invalidate(&mut self, set: u64, way: usize) -> Option<(u64, bool, ReqClass)> {
        let i = self.base(set) + way;
        let w = &mut self.ways[i];
        if !w.valid {
            return None;
        }
        let out = (w.tag, w.dirty, w.owner);
        w.valid = false;
        w.dirty = false;
        Some(out)
    }

    /// Swap the contents (metadata) of two ways of the same set.
    pub fn swap(&mut self, set: u64, a: usize, b: usize) {
        let base = self.base(set);
        self.ways.swap(base + a, base + b);
    }

    /// Pick a victim way among the ways enabled in `mask` (bit per way):
    /// an invalid way if available, else the LRU. Returns `None` for an
    /// empty mask.
    pub fn pick_victim(&self, set: u64, mask: u16) -> Option<usize> {
        let view = self.set_view(set);
        let mut best: Option<(usize, u64)> = None;
        for (i, w) in view.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            if !w.valid {
                return Some(i);
            }
            match best {
                None => best = Some((i, w.stamp)),
                Some((_, s)) if w.stamp < s => best = Some((i, w.stamp)),
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    /// Halve every hotness counter (periodic decay, called per epoch).
    pub fn decay_hotness(&mut self) {
        for w in &mut self.ways {
            w.hotness >>= 1;
        }
    }

    /// Number of valid blocks owned by each class `(cpu, gpu)`.
    pub fn occupancy_by_class(&self) -> (u64, u64) {
        let mut cpu = 0;
        let mut gpu = 0;
        for w in &self.ways {
            if w.valid {
                match w.owner {
                    ReqClass::Cpu => cpu += 1,
                    ReqClass::Gpu => gpu += 1,
                }
            }
        }
        (cpu, gpu)
    }

    /// Debug invariant: no duplicate valid tags within any set.
    pub fn check_no_duplicate_tags(&self) -> bool {
        let sets = self.ways.len() / self.assoc;
        for s in 0..sets {
            let v = &self.ways[s * self.assoc..(s + 1) * self.assoc];
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    if v[i].valid && v[j].valid && v[i].tag == v[j].tag {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_sim_core::units::KIB;

    fn table() -> (HybridConfig, RemapTable) {
        let cfg = HybridConfig {
            fast_capacity: 64 * KIB, // 64 sets of 4 ways at 256 B
            ..HybridConfig::default()
        };
        let t = RemapTable::new(&cfg);
        (cfg, t)
    }

    #[test]
    fn fill_lookup_touch() {
        let (_, mut t) = table();
        assert_eq!(t.lookup(5, 99), None);
        assert_eq!(t.fill(5, 2, 99, ReqClass::Gpu, false), None);
        assert_eq!(t.lookup(5, 99), Some(2));
        t.touch(5, 2, true);
        let w = t.set_view(5)[2];
        assert!(w.dirty);
        assert_eq!(w.owner, ReqClass::Gpu);
        assert_eq!(w.hotness, 2);
    }

    #[test]
    fn fill_reports_victim() {
        let (_, mut t) = table();
        t.fill(1, 0, 7, ReqClass::Cpu, true);
        let v = t.fill(1, 0, 8, ReqClass::Gpu, false);
        assert_eq!(v, Some((7, true, ReqClass::Cpu)));
    }

    #[test]
    fn victim_prefers_invalid_then_lru() {
        let (_, mut t) = table();
        t.fill(3, 0, 1, ReqClass::Cpu, false);
        t.fill(3, 1, 2, ReqClass::Cpu, false);
        // Ways 2,3 invalid: mask over all ways picks an invalid one.
        let v = t.pick_victim(3, 0b1111).unwrap();
        assert!(v == 2 || v == 3);
        t.fill(3, 2, 3, ReqClass::Cpu, false);
        t.fill(3, 3, 4, ReqClass::Cpu, false);
        // Touch all but way 1 -> way 1 is LRU.
        t.touch(3, 0, false);
        t.touch(3, 2, false);
        t.touch(3, 3, false);
        assert_eq!(t.pick_victim(3, 0b1111), Some(1));
        // Restricted mask.
        assert_eq!(t.pick_victim(3, 0b1000), Some(3));
        assert_eq!(t.pick_victim(3, 0), None);
    }

    #[test]
    fn swap_exchanges_ways() {
        let (_, mut t) = table();
        t.fill(0, 0, 10, ReqClass::Cpu, true);
        t.fill(0, 3, 20, ReqClass::Gpu, false);
        t.swap(0, 0, 3);
        assert_eq!(t.lookup(0, 10), Some(3));
        assert_eq!(t.lookup(0, 20), Some(0));
        assert!(t.set_view(0)[3].dirty);
    }

    #[test]
    fn decay_halves_hotness() {
        let (_, mut t) = table();
        t.fill(0, 0, 1, ReqClass::Cpu, false);
        for _ in 0..9 {
            t.touch(0, 0, false);
        }
        assert_eq!(t.set_view(0)[0].hotness, 10);
        t.decay_hotness();
        assert_eq!(t.set_view(0)[0].hotness, 5);
    }

    #[test]
    fn occupancy_counts_by_class() {
        let (_, mut t) = table();
        t.fill(0, 0, 1, ReqClass::Cpu, false);
        t.fill(0, 1, 2, ReqClass::Gpu, false);
        t.fill(1, 0, 3, ReqClass::Gpu, false);
        assert_eq!(t.occupancy_by_class(), (1, 2));
    }

    #[test]
    fn invalidate_clears() {
        let (_, mut t) = table();
        t.fill(2, 1, 5, ReqClass::Cpu, true);
        assert!(t.invalidate(2, 1).is_some());
        assert_eq!(t.lookup(2, 5), None);
        assert_eq!(t.invalidate(2, 1), None);
    }

    #[test]
    fn no_duplicate_tags_invariant_holds() {
        let (_, mut t) = table();
        for i in 0..200u64 {
            let set = i % 64;
            let tag = i / 7;
            if t.lookup(set, tag).is_none() {
                let way = t.pick_victim(set, 0b1111).unwrap();
                t.fill(set, way, tag, ReqClass::Cpu, false);
            }
        }
        assert!(t.check_no_duplicate_tags());
    }
}
