//! The partition-policy interface.
//!
//! Every memory-management design the paper evaluates — Hydrogen and the
//! baselines (no partitioning, WayPart, HAShCache, ProFess) — implements
//! [`PartitionPolicy`]. The hybrid memory controller consults the policy at
//! each decision point: where a block may be placed (`alloc_mask`), which
//! channel serves a way (`way_channel`), whether a miss may migrate
//! (`migration_allowed`), request priorities, fast-memory swaps, and the
//! per-epoch adaptation hook.

use crate::remap::WayMeta;
use crate::types::ReqClass;
use h2_sim_core::SeededRng;

/// Snapshot of a policy's partitioning parameters (Hydrogen's `(bw, cap,
/// tok)` triple; baselines report fixed equivalents). Used for logging and
/// the Fig 8 search-landscape experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyParams {
    /// Fast channels dedicated to the CPU (`bw`).
    pub bw: usize,
    /// Fast ways per set allocated to the CPU (`cap`).
    pub cap: usize,
    /// Token-faucet level index (slow-bandwidth share for GPU migrations).
    pub tok: usize,
    /// Free-form description.
    pub label: String,
}

/// Per-epoch performance sample handed to `on_epoch`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochSample {
    /// Cycles in the epoch.
    pub cycles: u64,
    /// CPU instructions retired (all cores).
    pub cpu_instr: u64,
    /// GPU instructions retired (all EUs).
    pub gpu_instr: u64,
    /// The optimisation objective: user-weighted IPC (§IV).
    pub weighted_ipc: f64,
    /// CPU fast-memory hits / misses in the epoch.
    pub cpu_hits: u64,
    /// CPU fast-memory misses in the epoch.
    pub cpu_misses: u64,
    /// GPU fast-memory hits in the epoch.
    pub gpu_hits: u64,
    /// GPU fast-memory misses in the epoch.
    pub gpu_misses: u64,
    /// Block migrations performed.
    pub migrations: u64,
    /// Misses served without migration.
    pub bypasses: u64,
}

/// Aggregate token-bucket flow counters exposed for invariant monitoring.
/// Sums across every bucket a policy owns (global + per-channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenFlows {
    /// Tokens ever granted by the faucet (after banking caps).
    pub granted: u64,
    /// Tokens spent on admitted migrations.
    pub spent: u64,
    /// Tokens discarded by the banking cap at refill.
    pub discarded: u64,
    /// Requests denied for lack of tokens.
    pub denied: u64,
    /// Tokens currently available across all buckets.
    pub available: u64,
}

impl TokenFlows {
    /// The conservation law every faucet design must uphold: every granted
    /// token is either spent, discarded, or still available.
    pub fn conserved(&self) -> bool {
        self.granted == self.spent + self.discarded + self.available
    }
}

/// A hybrid-memory partitioning design.
pub trait PartitionPolicy {
    /// Short display name ("Hydrogen", "ProFess", ...).
    fn name(&self) -> &str;

    /// Bitmask of ways in `set` where blocks of `class` may be placed.
    fn alloc_mask(&self, set: u64, class: ReqClass) -> u16;

    /// Fast-memory channel serving `(set, way)`.
    fn way_channel(&self, set: u64, way: usize) -> usize;

    /// May a miss of `class` migrate a block right now? `cost` is the token
    /// cost (1 = refill only, 2 = refill + dirty write-back or flat swap);
    /// `is_write` is the demand type and `slow_channel` the missing block's
    /// home channel (for write-filtered and per-channel token designs).
    /// Called once per miss; policies with budgets decrement them here.
    fn migration_allowed(
        &mut self,
        class: ReqClass,
        cost: u32,
        is_write: bool,
        slow_channel: usize,
        rng: &mut SeededRng,
    ) -> bool;

    /// Memory-controller priority for demand requests of `class`
    /// (higher wins; HAShCache prioritises the CPU).
    fn priority(&self, class: ReqClass) -> u8 {
        let _ = class;
        0
    }

    /// On a fast hit by `class` in `way`, return a way to swap the block
    /// with (Hydrogen's fast-memory swap into CPU-dedicated channels).
    fn swap_target(
        &self,
        set: u64,
        way: usize,
        class: ReqClass,
        ways: &[WayMeta],
        rng: &mut SeededRng,
    ) -> Option<usize> {
        let _ = (set, way, class, ways, rng);
        None
    }

    /// Epoch boundary: observe the sample, possibly adapt. Return `true`
    /// when the mapping (`alloc_mask`/`way_channel` outputs) changed, so the
    /// controller can account a reconfiguration.
    fn on_epoch(&mut self, sample: &EpochSample) -> bool {
        let _ = sample;
        false
    }

    /// Token-faucet tick (finer-grained than epochs).
    fn on_faucet(&mut self) {}

    /// Current parameter snapshot.
    fn params(&self) -> PolicyParams;

    /// When `true`, reconfigurations teleport misplaced blocks instantly
    /// and for free (the `Ideal` variant of Fig 7b) instead of lazily.
    fn ideal_reconfig(&self) -> bool {
        false
    }

    /// The set a block of `class` lives in. The default is plain modulo
    /// interleaving; set-partitioning designs (§IV-F) override this to
    /// colour each class's blocks into its own sets (the hardware analogue
    /// of OS page colouring).
    fn home_set(&self, block: u64, class: ReqClass, num_sets: u64) -> u64 {
        let _ = class;
        // Power-of-two set counts (every paper config) take the mask path;
        // this runs per transaction.
        if num_sets.is_power_of_two() {
            block & (num_sets - 1)
        } else {
            block % num_sets
        }
    }

    /// Emit policy-internal telemetry (token accounting, search state,
    /// reconfiguration counts) into the scoped registry. Policies without
    /// internal state emit nothing.
    fn collect_metrics(&self, m: &mut h2_sim_core::ScopedMetrics<'_>) {
        let _ = m;
    }

    /// Aggregate token-flow counters for invariant monitoring, or `None`
    /// for designs without a token faucet.
    fn token_flows(&self) -> Option<TokenFlows> {
        None
    }

    /// Policy-internal consistency check, called from monitor hook points.
    /// Returns `Err` with a description when internal state is corrupt
    /// (e.g. a token bucket violating conservation).
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

/// The trivial fully-shared policy: every way open to every class, every
/// miss migrates, no priorities. This is the paper's non-partitioned
/// baseline; it also serves as the neutral policy in unit tests.
#[derive(Debug, Clone)]
pub struct SharedPolicy {
    assoc: usize,
    channels: usize,
}

impl SharedPolicy {
    /// Build for a geometry of `assoc` ways and `channels` fast channels.
    pub fn new(assoc: usize, channels: usize) -> Self {
        assert!((1..=16).contains(&assoc));
        assert!(channels >= 1);
        Self { assoc, channels }
    }
}

impl PartitionPolicy for SharedPolicy {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn alloc_mask(&self, _set: u64, _class: ReqClass) -> u16 {
        ((1u32 << self.assoc) - 1) as u16
    }

    fn way_channel(&self, set: u64, way: usize) -> usize {
        // Rotate ways across channels per set so no channel is special.
        if self.channels.is_power_of_two() {
            (way + set as usize) & (self.channels - 1)
        } else {
            (way + set as usize) % self.channels
        }
    }

    fn migration_allowed(
        &mut self,
        _class: ReqClass,
        _cost: u32,
        _is_write: bool,
        _slow_channel: usize,
        _rng: &mut SeededRng,
    ) -> bool {
        true
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            bw: 0,
            cap: self.assoc,
            tok: usize::MAX,
            label: "shared".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_policy_opens_everything() {
        let mut p = SharedPolicy::new(4, 4);
        let mut rng = SeededRng::derive(1, "t");
        assert_eq!(p.alloc_mask(0, ReqClass::Cpu), 0b1111);
        assert_eq!(p.alloc_mask(7, ReqClass::Gpu), 0b1111);
        assert!(p.migration_allowed(ReqClass::Gpu, 2, false, 0, &mut rng));
        assert_eq!(p.priority(ReqClass::Cpu), 0);
    }

    #[test]
    fn shared_policy_rotates_channels() {
        let p = SharedPolicy::new(4, 4);
        // Different sets place way 0 on different channels.
        let chans: Vec<usize> = (0..4).map(|s| p.way_channel(s, 0)).collect();
        assert_eq!(chans, vec![0, 1, 2, 3]);
        // All ways of one set cover all channels.
        let mut ways: Vec<usize> = (0..4).map(|w| p.way_channel(9, w)).collect();
        ways.sort_unstable();
        assert_eq!(ways, vec![0, 1, 2, 3]);
    }

    #[test]
    fn direct_mapped_masks() {
        let p = SharedPolicy::new(1, 4);
        assert_eq!(p.alloc_mask(0, ReqClass::Cpu), 0b1);
    }
}
