//! The hybrid memory controller (HMC).
//!
//! Sits behind the shared LLC. Every LLC miss or write-back becomes a
//! *transaction*: metadata probe (on-chip remap cache, falling back to a
//! remap-table read in fast memory), then either a fast-memory demand access
//! (hit) or a slow-memory access with a policy-controlled migration (miss).
//! Migration traffic — block refill, dirty-victim write-back, fast-memory
//! swaps, lazy-reconfiguration relocations — is issued as background
//! commands that share the same channels as demand traffic, which is exactly
//! the contention the paper's partitioning mechanisms manage.
//!
//! The HMC is event-agnostic: [`Hmc::access`] and [`Hmc::handle`] append
//! [`HmcOutput`] actions (DRAM commands to issue, timer callbacks, demand
//! responses) that the surrounding system executes.

use crate::policy::PartitionPolicy;
use crate::remap::RemapTable;
use crate::types::{HybridConfig, Mode, ReqClass, Tier};
use h2_cache::remap::{RemapCache, RemapLookup};
use h2_mem::MemCmd;
use h2_sim_core::prof;
use h2_sim_core::trace_span::{BlameClass, SpanId, TraceTag};
use h2_sim_core::units::Cycles;
use h2_sim_core::{CounterId, GaugeId, MetricsRegistry, SeededRng};

/// Token value for fire-and-forget commands not tied to a transaction
/// (metadata write-backs).
pub const ORPHAN_TOKEN: u64 = u64::MAX;

/// Extra cycles a speculative (remap-cache-missing) metadata probe adds to
/// the access, modelling mis-speculation cleanup in parallel tag/data
/// designs.
pub const META_SPEC_PENALTY: h2_sim_core::units::Cycles = 4;

/// Remap-table entries are a few bytes each, so one 64 B metadata line
/// covers this many consecutive sets — streaming accesses to consecutive
/// sets hit the same on-chip remap-cache line.
pub const META_SETS_PER_LINE: u64 = 8;

const STEP_META: u64 = 0;
const STEP_DEMAND: u64 = 1;
const STEP_BG: u64 = 2;

/// Actions the HMC asks the surrounding system to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HmcOutput {
    /// Issue a DRAM command; on completion call
    /// [`Hmc::handle`] with [`HmcEvent::MemDone`] carrying `cmd.token`.
    Mem {
        /// Which tier's device.
        tier: Tier,
        /// Channel index within the device.
        channel: usize,
        /// The command (token pre-filled).
        cmd: MemCmd,
    },
    /// Call back with [`HmcEvent::SramDone`] after `delay` cycles
    /// (on-chip metadata latency).
    After {
        /// Delay in cycles.
        delay: Cycles,
        /// Token to echo back.
        token: u64,
    },
    /// The demand data for request `req_id` is available; wake the core/EU.
    DemandReady {
        /// Caller's request id.
        req_id: u64,
    },
    /// The transaction for `req_id` fully drained (all background traffic
    /// issued and completed).
    Retired {
        /// Caller's request id.
        req_id: u64,
    },
}

/// Events fed back into the HMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HmcEvent {
    /// A DRAM command with this token completed.
    MemDone(u64),
    /// An `After` callback with this token elapsed.
    SramDone(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    MetaWait,
    DemandWait,
    Drain,
}

#[derive(Debug, Clone)]
struct Txn {
    req_id: u64,
    class: ReqClass,
    addr: u64,
    is_write: bool,
    needs_response: bool,
    state: TxnState,
    pending_bg: u32,
    demand_done: bool,
    holds_buffer: bool,
    /// Tracing span carried by this transaction (sampled requests only).
    span: Option<SpanId>,
    /// The metadata probe missed the on-chip remap cache.
    meta_missed: bool,
    /// The policy (token faucet / bypass decision) denied this miss's
    /// migration, leaving its demand on the slow tier.
    token_denied: bool,
}

/// Per-class and aggregate HMC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmcStats {
    /// Accesses per class `[cpu, gpu]`.
    pub accesses: [u64; 2],
    /// Fast-tier hits per class.
    pub fast_hits: [u64; 2],
    /// Fast-tier misses per class.
    pub fast_misses: [u64; 2],
    /// Misses that migrated a block, per class.
    pub migrations: [u64; 2],
    /// Misses served directly from slow memory, per class.
    pub bypasses: [u64; 2],
    /// Dirty-victim (or flat-mode) write-backs to slow memory.
    pub victim_writebacks: u64,
    /// Fast-memory swaps performed (Hydrogen §IV-A).
    pub swaps: u64,
    /// Lazy-reconfiguration relocations/invalidations (§IV-D).
    pub lazy_fixups: u64,
    /// Remap-table reads that missed the on-chip remap cache.
    pub meta_reads: u64,
    /// Dirty metadata write-backs.
    pub meta_writebacks: u64,
    /// Migrations suppressed by the policy (token exhaustion / bypass
    /// decisions), per class.
    pub migrations_denied: [u64; 2],
    /// Migrations suppressed by migration-buffer backpressure, per class.
    pub buffer_denied: [u64; 2],
}

impl HmcStats {
    /// Fast-tier hit rate for a class.
    pub fn hit_rate(&self, class: ReqClass) -> f64 {
        let i = class.idx();
        let t = self.fast_hits[i] + self.fast_misses[i];
        if t == 0 {
            0.0
        } else {
            self.fast_hits[i] as f64 / t as f64
        }
    }
}

/// Interned handles for one requester class's counters (see
/// [`Hmc::intern_metrics`]).
#[derive(Debug, Clone, Copy)]
struct ClassMetricHandles {
    accesses: CounterId,
    fast_hits: CounterId,
    fast_misses: CounterId,
    migrations: CounterId,
    bypasses: CounterId,
    migrations_denied: CounterId,
    buffer_denied: CounterId,
}

/// Dense metric handles covering the static (non-policy) portion of
/// [`Hmc::collect_metrics`]. Produced once at system build by
/// [`Hmc::intern_metrics`]; [`Hmc::record_metrics`] then stores every value
/// with indexed writes — no hashing, no string formatting.
#[derive(Debug, Clone)]
pub struct HmcMetricHandles {
    classes: [ClassMetricHandles; 2],
    victim_writebacks: CounterId,
    swaps: CounterId,
    lazy_fixups: CounterId,
    txns_started: CounterId,
    txns_retired: CounterId,
    inflight: GaugeId,
    bg_txns: GaugeId,
    rc_hits: CounterId,
    rc_misses: CounterId,
    rc_writebacks: CounterId,
    meta_reads: CounterId,
    meta_writebacks: CounterId,
    occ_cpu: GaugeId,
    occ_gpu: GaugeId,
    pol_bw: GaugeId,
    pol_cap: GaugeId,
    pol_tok: GaugeId,
}

/// One per-set entry of the memoised alloc-mask cache: the two class
/// masks plus the invalidation stamp they were computed under. Stamp
/// comparison (instead of a validity bitmap) makes whole-cache
/// invalidation O(1) — epoch/faucet boundaries bump the stamp and every
/// entry is stale at once, with no memset over `num_sets` entries.
#[derive(Debug, Clone, Copy, Default)]
struct MaskMemoEntry {
    stamp: u64,
    masks: [u16; 2],
}

/// The hybrid memory controller.
pub struct Hmc {
    cfg: HybridConfig,
    table: RemapTable,
    rcache: RemapCache,
    policy: Box<dyn PartitionPolicy>,
    rng: SeededRng,
    txns: Vec<Option<Txn>>,
    /// Per-slot generation, bumped on retire. Command tokens embed the
    /// generation (see [`Self::token`]) so a token that outlives its
    /// transaction is detected instead of silently addressing whatever
    /// reused the slot.
    gens: Vec<u32>,
    free: Vec<u32>,
    /// Transactions currently holding a migration buffer (backpressure).
    bg_txns: usize,
    stats: HmcStats,
    epoch_base: HmcStats,
    /// Transactions ever begun / fully drained (conservation telemetry:
    /// `txns_started == txns_retired + inflight()` at every instant).
    txns_started: u64,
    txns_retired: u64,
    /// Memoised `policy.alloc_mask(set, class)` results, one entry per
    /// set (lazily grown to the touched range). Masks can only change at
    /// epoch/faucet/reconfig boundaries — every `alloc_mask` impl takes
    /// `&self`, so between the controller's `&mut` policy calls the
    /// function is pure in `(set, class)`; [`Self::check_mask_memo`]
    /// re-asserts this at monitor probes.
    mask_memo: Vec<MaskMemoEntry>,
    /// Current memo generation; entries with an older stamp are stale.
    mask_memo_stamp: u64,
    /// Memoisation toggle (observation-level: on and off are bit-identical,
    /// pinned by the `mask-memo-off` fuzz relation).
    mask_memo_on: bool,
}

impl Hmc {
    /// Build an HMC for `cfg` driven by `policy`.
    pub fn new(cfg: HybridConfig, policy: Box<dyn PartitionPolicy>, seed: u64) -> Self {
        let table = RemapTable::new(&cfg);
        let rcache = RemapCache::new(cfg.remap_cache_bytes);
        Self {
            cfg,
            table,
            rcache,
            policy,
            rng: SeededRng::derive(seed, "hmc"),
            txns: Vec::with_capacity(256),
            gens: Vec::with_capacity(256),
            free: Vec::new(),
            bg_txns: 0,
            stats: HmcStats::default(),
            epoch_base: HmcStats::default(),
            txns_started: 0,
            txns_retired: 0,
            mask_memo: Vec::new(),
            mask_memo_stamp: 1,
            mask_memo_on: true,
        }
    }

    /// Enable or disable alloc-mask memoisation. Observation-level: both
    /// settings are bit-identical (the memo only caches a pure function
    /// between its invalidation boundaries); the toggle exists for the
    /// metamorphic fuzz relation and A/B profiling.
    pub fn set_mask_memo(&mut self, on: bool) {
        self.mask_memo_on = on;
        if !on {
            self.mask_memo = Vec::new();
        }
    }

    /// Drop every memoised mask (O(1): bumps the generation stamp).
    /// Called at the boundaries where partition masks may change —
    /// epoch, faucet, forced reconfiguration, direct policy mutation.
    #[inline]
    fn invalidate_mask_memo(&mut self) {
        self.mask_memo_stamp += 1;
    }

    /// Memoising front-end for `policy.alloc_mask(set, class)`. On a
    /// stale or missing entry, computes *both* class masks for the set
    /// (the miss path usually wants the other class a moment later via
    /// `swap_target`'s view or the chained set) and caches them under the
    /// current stamp.
    #[inline]
    fn alloc_mask_memo(&mut self, set: u64, class: ReqClass) -> u16 {
        if !self.mask_memo_on {
            return self.policy.alloc_mask(set, class);
        }
        let si = set as usize;
        if si >= self.mask_memo.len() {
            self.mask_memo.resize(si + 1, MaskMemoEntry::default());
        }
        if self.mask_memo[si].stamp != self.mask_memo_stamp {
            let masks = [
                self.policy.alloc_mask(set, ReqClass::Cpu),
                self.policy.alloc_mask(set, ReqClass::Gpu),
            ];
            self.mask_memo[si] = MaskMemoEntry {
                stamp: self.mask_memo_stamp,
                masks,
            };
        }
        self.mask_memo[si].masks[class.idx()]
    }

    /// Verify every live memo entry against a direct policy call
    /// (invariant monitors): a mismatch means a policy changed its masks
    /// outside the epoch/faucet/reconfig boundaries the memo invalidates
    /// on.
    pub fn check_mask_memo(&self) -> Result<(), String> {
        for (set, e) in self.mask_memo.iter().enumerate() {
            if e.stamp != self.mask_memo_stamp {
                continue;
            }
            for class in [ReqClass::Cpu, ReqClass::Gpu] {
                let direct = self.policy.alloc_mask(set as u64, class);
                let memo = e.masks[class.idx()];
                if direct != memo {
                    return Err(format!(
                        "mask memo stale outside an invalidation boundary: \
                         set {set} class {class:?} memo {memo:#06b} direct {direct:#06b}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HmcStats {
        self.stats
    }

    /// The active policy (for parameter snapshots).
    pub fn policy(&self) -> &dyn PartitionPolicy {
        self.policy.as_ref()
    }

    /// Mutable access to the active policy (tests, forced reconfiguration).
    /// Conservatively drops the memoised alloc-masks: the caller may
    /// mutate anything, including the partition configuration.
    pub fn policy_mut(&mut self) -> &mut dyn PartitionPolicy {
        self.invalidate_mask_memo();
        self.policy.as_mut()
    }

    /// Transactions ever begun (`started == retired + inflight`).
    pub fn txns_started(&self) -> u64 {
        self.txns_started
    }

    /// Transactions fully drained.
    pub fn txns_retired(&self) -> u64 {
        self.txns_retired
    }

    /// Remap-cache `(hits, misses, writebacks)`.
    pub fn remap_cache_counts(&self) -> (u64, u64, u64) {
        self.rcache.counts()
    }

    /// Fast-way occupancy by class `(cpu, gpu)` — isolation checks.
    pub fn occupancy_by_class(&self) -> (u64, u64) {
        self.table.occupancy_by_class()
    }

    /// Transactions currently in flight.
    pub fn inflight(&self) -> usize {
        self.txns.iter().filter(|t| t.is_some()).count()
    }

    fn alloc_txn(&mut self, txn: Txn) -> u32 {
        self.txns_started += 1;
        if let Some(i) = self.free.pop() {
            self.txns[i as usize] = Some(txn);
            i
        } else {
            self.txns.push(Some(txn));
            self.gens.push(0);
            (self.txns.len() - 1) as u32
        }
    }

    /// Low 30 bits of a slot's generation, as embedded in tokens. 30 bits
    /// keeps the token layout `gen:30 | idx:32 | step:2` inside a `u64`;
    /// a slot would need a billion reuses for a stale token to alias.
    #[inline]
    fn gen_bits(&self, idx: u32) -> u64 {
        (self.gens[idx as usize] & 0x3FFF_FFFF) as u64
    }

    /// Command token for step `step` of the transaction in slot `idx`,
    /// stamped with the slot's current generation.
    #[inline]
    fn token(&self, idx: u32, step: u64) -> u64 {
        (self.gen_bits(idx) << 34) | ((idx as u64) << 2) | step
    }

    /// Device byte address of the remap-table line for `set` (the table
    /// lives in fast memory above the data region; one line covers
    /// [`META_SETS_PER_LINE`] sets).
    fn meta_addr(&self, set: u64) -> u64 {
        let line = set / META_SETS_PER_LINE;
        self.cfg.num_sets() * self.cfg.assoc as u64 * self.cfg.block_bytes + line * 64
    }

    fn meta_channel(&self, set: u64) -> usize {
        ((set / META_SETS_PER_LINE) % self.cfg.fast_channels as u64) as usize
    }

    /// Begin a transaction for a 64 B LLC-side access.
    ///
    /// * `req_id` — caller's identifier, echoed in `DemandReady`/`Retired`.
    /// * `needs_response` — false for LLC write-backs (fire and forget).
    pub fn access(
        &mut self,
        req_id: u64,
        class: ReqClass,
        addr: u64,
        is_write: bool,
        needs_response: bool,
        out: &mut Vec<HmcOutput>,
    ) {
        self.access_traced(req_id, class, addr, is_write, needs_response, None, out);
    }

    /// [`Self::access`] with an optional tracing span that the transaction
    /// carries through its lifetime (see `h2_sim_core::trace_span`). The
    /// span is observational only: it never changes what the HMC does.
    #[allow(clippy::too_many_arguments)]
    pub fn access_traced(
        &mut self,
        req_id: u64,
        class: ReqClass,
        addr: u64,
        is_write: bool,
        needs_response: bool,
        span: Option<SpanId>,
        out: &mut Vec<HmcOutput>,
    ) {
        let _prof = prof::scope("hmc.access");
        let block = self.cfg.block_of(addr);
        let set = self.policy.home_set(block, class, self.cfg.num_sets());

        let txn = Txn {
            req_id,
            class,
            addr,
            is_write,
            needs_response,
            state: TxnState::MetaWait,
            pending_bg: 0,
            demand_done: false,
            holds_buffer: false,
            span,
            meta_missed: false,
            token_denied: false,
        };
        let idx = self.alloc_txn(txn);

        // Metadata probe: remap cache first. Entries are marked dirty
        // because LRU/fill updates must eventually persist to the table.
        let _prof_remap = prof::scope("hmc.remap");
        let mut probes = [set / META_SETS_PER_LINE, 0];
        let mut nprobes = 1;
        if self.cfg.chaining {
            let chained = self.cfg.chain_set(set) / META_SETS_PER_LINE;
            if chained != probes[0] {
                probes[1] = chained;
                nprobes = 2;
            }
        }
        let mut worst_miss = false;
        for s in probes.into_iter().take(nprobes) {
            match self.rcache.lookup(s, true) {
                RemapLookup::Hit => {}
                RemapLookup::Miss { dirty_victim } => {
                    worst_miss = true;
                    self.stats.meta_reads += 1;
                    if let Some(v) = dirty_victim {
                        self.stats.meta_writebacks += 1;
                        out.push(HmcOutput::Mem {
                            tier: Tier::Fast,
                            channel: self.meta_channel(v * META_SETS_PER_LINE),
                            cmd: MemCmd {
                                addr: self.meta_addr(v * META_SETS_PER_LINE),
                                bytes: 64,
                                is_write: true,
                                priority: 0,
                                token: ORPHAN_TOKEN,
                            },
                        });
                    }
                }
            }
        }

        // Metadata probing is *speculative* (parallel tag/data access as in
        // Alloy- and BEAR-style DRAM caches): a remap-cache miss issues the
        // remap-table read for bandwidth accounting and on-chip refill, but
        // the transaction proceeds after a small fixed penalty instead of
        // serialising behind a whole DRAM round trip.
        if worst_miss {
            out.push(HmcOutput::Mem {
                tier: Tier::Fast,
                channel: self.meta_channel(set),
                cmd: MemCmd {
                    addr: self.meta_addr(set),
                    bytes: 64,
                    is_write: false,
                    priority: demand_priority(self.policy.priority(class)),
                    token: ORPHAN_TOKEN,
                },
            });
        }
        let spec_penalty = if worst_miss { META_SPEC_PENALTY } else { 0 };
        if worst_miss {
            if let Some(t) = self.txns[idx as usize].as_mut() {
                t.meta_missed = true;
            }
        }
        out.push(HmcOutput::After {
            delay: self.rcache.latency() + self.cfg.extra_tag_latency + spec_penalty,
            token: self.token(idx, STEP_META),
        });
    }

    /// Decompose a command token: the owning transaction (if any) and its
    /// step, for the tracing queries below.
    fn token_txn(&self, token: u64) -> Option<(&Txn, u64)> {
        if token == ORPHAN_TOKEN {
            return None;
        }
        let idx = ((token >> 2) & 0xFFFF_FFFF) as usize;
        let gen = token >> 34;
        let step = token & 3;
        if self.gens.get(idx).map(|g| (g & 0x3FFF_FFFF) as u64) != Some(gen) {
            return None; // stale token: the slot was retired and reused
        }
        self.txns.get(idx)?.as_ref().map(|t| (t, step))
    }

    /// Requester class of the DRAM command carrying `token`, for tracing
    /// queue-composition accounting: demand-path commands (metadata probe,
    /// demand access) take their transaction's class; background migration
    /// traffic and orphan metadata write-backs are [`BlameClass::Background`].
    pub fn cmd_blame_class(&self, token: u64) -> BlameClass {
        match self.token_txn(token) {
            Some((t, step)) if step != STEP_BG => match t.class {
                ReqClass::Cpu => BlameClass::CpuDemand,
                ReqClass::Gpu => BlameClass::GpuDemand,
            },
            _ => BlameClass::Background,
        }
    }

    /// If `token` is the *demand* command of a traced transaction, its
    /// span tag. Must be queried before the completion is fed to
    /// [`Self::handle`] (which may retire the transaction).
    pub fn demand_trace(&self, token: u64) -> Option<TraceTag> {
        let (t, step) = self.token_txn(token)?;
        if step != STEP_DEMAND {
            return None;
        }
        t.span.map(|span| TraceTag { span, token_stalled: t.token_denied })
    }

    /// [`Self::cmd_blame_class`] and [`Self::demand_trace`] in one token
    /// decomposition — the per-command issue path needs both.
    pub fn cmd_trace_ctx(&self, token: u64) -> (BlameClass, Option<TraceTag>) {
        match self.token_txn(token) {
            Some((t, step)) if step != STEP_BG => {
                let class = match t.class {
                    ReqClass::Cpu => BlameClass::CpuDemand,
                    ReqClass::Gpu => BlameClass::GpuDemand,
                };
                let tag = if step == STEP_DEMAND {
                    t.span.map(|span| TraceTag { span, token_stalled: t.token_denied })
                } else {
                    None
                };
                (class, tag)
            }
            _ => (BlameClass::Background, None),
        }
    }

    /// If `token` is the *metadata* step of a traced transaction, its span
    /// and whether the probe missed the remap cache.
    pub fn meta_span(&self, token: u64) -> Option<(SpanId, bool)> {
        let (t, step) = self.token_txn(token)?;
        if step != STEP_META {
            return None;
        }
        t.span.map(|span| (span, t.meta_missed))
    }

    /// Feed a completion event back into the controller.
    pub fn handle(&mut self, ev: HmcEvent, out: &mut Vec<HmcOutput>) {
        let _prof = prof::scope("hmc.handle");
        let token = match ev {
            HmcEvent::MemDone(t) | HmcEvent::SramDone(t) => t,
        };
        if token == ORPHAN_TOKEN {
            return;
        }
        let idx = ((token >> 2) & 0xFFFF_FFFF) as u32;
        let step = token & 3;
        if self.gen_bits(idx) != token >> 34 {
            // Generation mismatch: the token's transaction already retired.
            // Healthy pipelines never produce this (every outstanding command
            // holds its transaction open), so flag it loudly in debug builds.
            debug_assert!(false, "stale transaction token {token:#x}");
            return;
        }
        match step {
            STEP_META => self.proceed_meta(idx, out),
            STEP_DEMAND => self.demand_done(idx, out),
            STEP_BG => self.bg_done(idx, out),
            _ => unreachable!("bad token step"),
        }
    }

    /// Metadata available: resolve hit/miss and issue the demand access.
    fn proceed_meta(&mut self, idx: u32, out: &mut Vec<HmcOutput>) {
        let _prof = prof::scope("hmc.meta");
        // Copy the handful of scalars the resolution needs instead of
        // cloning the whole transaction (the trace span makes `Txn: Clone`
        // heap-allocate); the slab entry itself is only written through
        // `as_mut` at well-scoped points below.
        let (class, addr, is_write) = {
            let t = self.txns[idx as usize].as_ref().expect("live txn");
            (t.class, t.addr, t.is_write)
        };
        // Counted here (not at `access`) so `hits + misses == accesses`
        // holds exactly at any sampling boundary.
        self.stats.accesses[class.idx()] += 1;
        let block = self.cfg.block_of(addr);
        let home_set = self.policy.home_set(block, class, self.cfg.num_sets());

        // Tags are full block ids (globally unique), so chained placement
        // and policy-remapped home sets need no extra marker bits.
        // `lookup_touch` fuses the probe with the LRU/hotness/dirty update
        // so the common hit case walks the set once and already knows the
        // resident owner for the misplacement check in `fast_hit`.
        let mut found = self
            .table
            .lookup_touch(home_set, block, is_write)
            .map(|(w, o)| (home_set, w, o));
        if found.is_none() && self.cfg.chaining {
            let cs = self.cfg.chain_set(home_set);
            found = self
                .table
                .lookup_touch(cs, block, is_write)
                .map(|(w, o)| (cs, w, o));
        }

        match found {
            Some((set, way, owner)) => self.fast_hit(idx, set, way, owner, out),
            None => self.fast_miss(idx, home_set, block, out),
        }
    }

    /// Hit path. The way has already been touched by `proceed_meta`'s fused
    /// probe; `owner` is the resident block's class as read in that pass.
    fn fast_hit(&mut self, idx: u32, set: u64, way: usize, owner: ReqClass, out: &mut Vec<HmcOutput>) {
        let _prof = prof::scope("hmc.hit");
        let (class, is_write) = {
            let t = self.txns[idx as usize].as_ref().expect("live txn");
            (t.class, t.is_write)
        };
        self.stats.fast_hits[class.idx()] += 1;

        // Demand access on the way's channel.
        let ch = self.policy.way_channel(set, way);
        out.push(HmcOutput::Mem {
            tier: Tier::Fast,
            channel: ch,
            cmd: MemCmd {
                addr: self.cfg.fast_addr_of(set, way),
                bytes: 64,
                is_write,
                priority: demand_priority(self.policy.priority(class)),
                token: self.token(idx, STEP_DEMAND),
            },
        });
        if let Some(t) = self.txns[idx as usize].as_mut() {
            t.state = TxnState::DemandWait;
        }

        // Post-hit bookkeeping: lazy reconfiguration, then fast swap.
        let _prof_policy = prof::scope("hmc.policy");
        let mask = self.alloc_mask_memo(set, owner);
        let misplaced = mask & (1 << way) == 0;
        if misplaced {
            // Cached: `env::var` allocates and this runs per misplaced hit.
            static DEBUG_FIXUP: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            if *DEBUG_FIXUP.get_or_init(|| std::env::var("H2_DEBUG_FIXUP").is_ok()) {
                eprintln!(
                    "FIXUP set={} way={} owner={:?} mask={:#06b} hitclass={:?} view={:?}",
                    set, way, owner, mask, class,
                    self.table.set_view(set).iter().map(|w| (w.valid, w.owner, w.tag)).collect::<Vec<_>>()
                );
            }
            self.lazy_fixup(idx, set, way, out);
        } else if self.bg_txns < self.cfg.migration_buffers {
            if let Some(target) = self.policy.swap_target(
                set,
                way,
                class,
                self.table.set_view(set),
                &mut self.rng,
            ) {
                self.do_swap(idx, set, way, target, out);
            }
        }
    }

    /// Lazy reconfiguration (§IV-D): the block's way no longer belongs to
    /// its owner class. Serve the access, then invalidate (cache mode,
    /// write back if dirty) or relocate home (flat mode).
    fn lazy_fixup(&mut self, idx: u32, set: u64, way: usize, out: &mut Vec<HmcOutput>) {
        let Some((tag, dirty, _owner)) = self.table.invalidate(set, way) else {
            return;
        };
        self.stats.lazy_fixups += 1;
        let needs_writeback = dirty || self.cfg.mode == Mode::Flat;
        if needs_writeback {
            let block = tag; // tags are full block ids
            self.stats.victim_writebacks += 1;
            // Read the block from fast, write it to its slow home.
            self.push_bg(
                idx,
                Tier::Fast,
                self.policy.way_channel(set, way),
                self.cfg.fast_addr_of(set, way),
                self.cfg.block_bytes as u32,
                false,
                out,
            );
            self.push_bg(
                idx,
                Tier::Slow,
                self.cfg.slow_channel_of(block),
                self.cfg.slow_addr_of_block(block),
                self.cfg.block_bytes as u32,
                true,
                out,
            );
        }
    }

    /// Fast-memory swap (§IV-A): exchange the blocks in `way` and `target`.
    fn do_swap(&mut self, idx: u32, set: u64, way: usize, target: usize, out: &mut Vec<HmcOutput>) {
        if target == way {
            return;
        }
        self.stats.swaps += 1;
        self.table.swap(set, way, target);
        if self.cfg.free_swaps {
            return; // Ideal variant: metadata moves, no DRAM traffic.
        }
        let bytes = self.cfg.block_bytes as u32;
        for &w in &[way, target] {
            let ch = self.policy.way_channel(set, w);
            let addr = self.cfg.fast_addr_of(set, w);
            self.push_bg(idx, Tier::Fast, ch, addr, bytes, false, out);
            self.push_bg(idx, Tier::Fast, ch, addr, bytes, true, out);
        }
    }

    fn fast_miss(&mut self, idx: u32, set: u64, block: u64, out: &mut Vec<HmcOutput>) {
        let _prof = prof::scope("hmc.miss");
        let (class, addr, is_write) = {
            let t = self.txns[idx as usize].as_ref().expect("live txn");
            (t.class, t.addr, t.is_write)
        };
        self.stats.fast_misses[class.idx()] += 1;

        // Candidate placement: policy mask in the home set; with chaining a
        // fallback slot in the chained set. (Policy scoring + victim walk
        // attribute to `hmc.policy`, the migration/demand issue below to
        // the enclosing `hmc.miss`.)
        let prof_policy = prof::scope("hmc.policy");
        let mask = self.alloc_mask_memo(set, class);
        let mut place: Option<(u64, u64, usize)> = self
            .table
            .pick_victim(set, mask)
            .map(|w| (set, block, w));
        if self.cfg.chaining {
            let cs = self.cfg.chain_set(set);
            let cmask = self.alloc_mask_memo(cs, class);
            let prefer_chain = match place {
                None => true,
                Some((s, _, w)) => self.table.set_view(s)[w].valid,
            };
            if prefer_chain {
                if let Some(cw) = self.table.pick_victim(cs, cmask) {
                    if !self.table.set_view(cs)[cw].valid || place.is_none() {
                        place = Some((cs, block, cw));
                    }
                }
            }
        }

        let cost = match place {
            Some((s, _, w)) => {
                let victim = self.table.set_view(s)[w];
                if (victim.valid && victim.dirty) || self.cfg.mode == Mode::Flat {
                    2
                } else {
                    1
                }
            }
            None => 0,
        };

        let buffer_ok = self.bg_txns < self.cfg.migration_buffers;
        if place.is_some() && !buffer_ok {
            self.stats.buffer_denied[class.idx()] += 1;
        }
        let migrate = place.is_some()
            && buffer_ok
            && self.policy.migration_allowed(
                class,
                cost,
                is_write,
                self.cfg.slow_channel_of(block),
                &mut self.rng,
            );
        if place.is_some() && buffer_ok && !migrate {
            self.stats.migrations_denied[class.idx()] += 1;
            // Tracing: the slow-queue wait of this demand is charged to the
            // policy/token decision that kept the block out of fast memory.
            if let Some(t) = self.txns[idx as usize].as_mut() {
                t.token_denied = true;
            }
        }
        drop(prof_policy);

        // Demand 64 B from the slow tier (critical path) in all cases.
        out.push(HmcOutput::Mem {
            tier: Tier::Slow,
            channel: self.cfg.slow_channel_of(block),
            cmd: MemCmd {
                addr: self.cfg.slow_addr_of_block(block) + (addr % self.cfg.block_bytes),
                bytes: 64,
                is_write: is_write && !migrate,
                priority: demand_priority(self.policy.priority(class)),
                token: self.token(idx, STEP_DEMAND),
            },
        });
        if let Some(t) = self.txns[idx as usize].as_mut() {
            t.state = TxnState::DemandWait;
        }

        if !migrate {
            self.stats.bypasses[class.idx()] += 1;
            return;
        }

        let (pset, ptag, pway) = place.expect("migrate implies placement");
        self.stats.migrations[class.idx()] += 1;
        let evicted = self.table.fill(pset, pway, ptag, class, is_write);
        let bytes = self.cfg.block_bytes as u32;
        let way_ch = self.policy.way_channel(pset, pway);

        // Refill: rest of the block from slow, whole block written to fast.
        if bytes > 64 {
            self.push_bg(
                idx,
                Tier::Slow,
                self.cfg.slow_channel_of(block),
                self.cfg.slow_addr_of_block(block) + 64,
                bytes - 64,
                false,
                out,
            );
        }
        self.push_bg(
            idx,
            Tier::Fast,
            way_ch,
            self.cfg.fast_addr_of(pset, pway),
            bytes,
            true,
            out,
        );

        // Victim write-back: dirty in cache mode, always in flat mode (the
        // fast copy is the only copy).
        if let Some((etag, edirty, _eowner)) = evicted {
            if edirty || self.cfg.mode == Mode::Flat {
                self.stats.victim_writebacks += 1;
                let eblock = etag; // tags are full block ids
                self.push_bg(
                    idx,
                    Tier::Fast,
                    way_ch,
                    self.cfg.fast_addr_of(pset, pway),
                    bytes,
                    false,
                    out,
                );
                self.push_bg(
                    idx,
                    Tier::Slow,
                    self.cfg.slow_channel_of(eblock),
                    self.cfg.slow_addr_of_block(eblock),
                    bytes,
                    true,
                    out,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_bg(
        &mut self,
        idx: u32,
        tier: Tier,
        channel: usize,
        addr: u64,
        bytes: u32,
        is_write: bool,
        out: &mut Vec<HmcOutput>,
    ) {
        if let Some(t) = self.txns[idx as usize].as_mut() {
            if !t.holds_buffer {
                t.holds_buffer = true;
                self.bg_txns += 1;
            }
            t.pending_bg += 1;
        }
        out.push(HmcOutput::Mem {
            tier,
            channel,
            cmd: MemCmd {
                addr,
                bytes,
                is_write,
                priority: 0,
                token: self.token(idx, STEP_BG),
            },
        });
    }

    fn demand_done(&mut self, idx: u32, out: &mut Vec<HmcOutput>) {
        let (req_id, needs_response, retire) = {
            let t = self.txns[idx as usize].as_mut().expect("live txn");
            t.demand_done = true;
            t.state = TxnState::Drain;
            (t.req_id, t.needs_response, t.pending_bg == 0)
        };
        if needs_response {
            out.push(HmcOutput::DemandReady { req_id });
        }
        if retire {
            self.retire(idx, out);
        }
    }

    fn bg_done(&mut self, idx: u32, out: &mut Vec<HmcOutput>) {
        let retire = {
            let t = self.txns[idx as usize].as_mut().expect("live txn");
            debug_assert!(t.pending_bg > 0);
            t.pending_bg -= 1;
            t.pending_bg == 0 && t.demand_done
        };
        if retire {
            self.retire(idx, out);
        }
    }

    fn retire(&mut self, idx: u32, out: &mut Vec<HmcOutput>) {
        let t = self.txns[idx as usize].take().expect("live txn");
        if t.holds_buffer {
            debug_assert!(self.bg_txns > 0);
            self.bg_txns -= 1;
        }
        // Invalidate any token still naming this slot before it is reused.
        self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
        self.free.push(idx);
        self.txns_retired += 1;
        out.push(HmcOutput::Retired { req_id: t.req_id });
    }

    /// Epoch boundary: forward the sample to the policy, decay hotness, and
    /// perform an ideal (teleporting) reconfiguration when the policy asks
    /// for it. Returns `true` if the policy reconfigured.
    pub fn on_epoch(&mut self, sample: &crate::policy::EpochSample) -> bool {
        self.table.decay_hotness();
        let changed = self.policy.on_epoch(sample);
        // Epoch boundary: the policy may have reconfigured, so every
        // memoised mask is suspect. O(1) stamp bump.
        self.invalidate_mask_memo();
        if changed && self.policy.ideal_reconfig() {
            self.teleport_reconfig();
        }
        self.epoch_base = self.stats;
        changed
    }

    /// Statistics accumulated since the last epoch boundary.
    pub fn epoch_delta(&self) -> HmcStats {
        let mut d = self.stats;
        let b = &self.epoch_base;
        for i in 0..2 {
            d.accesses[i] -= b.accesses[i];
            d.fast_hits[i] -= b.fast_hits[i];
            d.fast_misses[i] -= b.fast_misses[i];
            d.migrations[i] -= b.migrations[i];
            d.bypasses[i] -= b.bypasses[i];
            d.migrations_denied[i] -= b.migrations_denied[i];
            d.buffer_denied[i] -= b.buffer_denied[i];
        }
        d.victim_writebacks -= b.victim_writebacks;
        d.swaps -= b.swaps;
        d.lazy_fixups -= b.lazy_fixups;
        d.meta_reads -= b.meta_reads;
        d.meta_writebacks -= b.meta_writebacks;
        d
    }

    /// Token-faucet tick. Refills only migration tokens today, but the
    /// memo treats it as an invalidation boundary too — the contract is
    /// "masks change only at epoch/faucet/reconfig", and keeping the
    /// faucet in the set costs one stamp bump per tick.
    pub fn on_faucet(&mut self) {
        self.policy.on_faucet();
        self.invalidate_mask_memo();
    }

    /// Ideal reconfiguration: instantly rearrange every set so each block
    /// sits in a way its owner class is allowed to use; overflow blocks are
    /// dropped (clean) — all without traffic (Fig 7b's `Ideal`).
    fn teleport_reconfig(&mut self) {
        let sets = self.cfg.num_sets();
        for set in 0..sets {
            let view: Vec<_> = self.table.set_view(set).to_vec();
            let blocks: Vec<_> = view.iter().filter(|w| w.valid).cloned().collect();
            for way in 0..view.len() {
                self.table.invalidate(set, way);
            }
            for b in blocks {
                let mask = self.policy.alloc_mask(set, b.owner);
                if let Some(w) = self.table.pick_victim(set, mask) {
                    if !self.table.set_view(set)[w].valid {
                        self.table.fill(set, w, b.tag, b.owner, b.dirty);
                    }
                }
            }
        }
    }

    /// Direct read-only access to the remap table (tests, invariants).
    pub fn table(&self) -> &RemapTable {
        &self.table
    }

    /// Emit controller telemetry into `m` (names relative; callers scope
    /// under `hmc`): per-class access/hit/migration counters, transaction
    /// conservation counters, remap-cache behaviour, way occupancy, and the
    /// active policy's own metrics under `policy.`.
    pub fn collect_metrics(&self, m: &mut h2_sim_core::ScopedMetrics<'_>) {
        let s = &self.stats;
        for (i, cls) in ["cpu", "gpu"].iter().enumerate() {
            let mut c = m.scoped(cls);
            c.inc("accesses", s.accesses[i]);
            c.inc("fast_hits", s.fast_hits[i]);
            c.inc("fast_misses", s.fast_misses[i]);
            c.inc("migrations", s.migrations[i]);
            c.inc("bypasses", s.bypasses[i]);
            c.inc("migrations_denied", s.migrations_denied[i]);
            c.inc("buffer_denied", s.buffer_denied[i]);
        }
        m.inc("victim_writebacks", s.victim_writebacks);
        m.inc("swaps", s.swaps);
        m.inc("lazy_fixups", s.lazy_fixups);
        m.inc("txns_started", self.txns_started);
        m.inc("txns_retired", self.txns_retired);
        m.set_gauge("inflight", self.inflight() as f64);
        m.set_gauge("bg_txns", self.bg_txns as f64);

        let (rh, rm, rw) = self.rcache.counts();
        let mut rc = m.scoped("remap_cache");
        rc.inc("hits", rh);
        rc.inc("misses", rm);
        rc.inc("writebacks", rw);
        m.inc("meta_reads", s.meta_reads);
        m.inc("meta_writebacks", s.meta_writebacks);

        let (occ_cpu, occ_gpu) = self.table.occupancy_by_class();
        m.set_gauge("occ_ways.cpu", occ_cpu as f64);
        m.set_gauge("occ_ways.gpu", occ_gpu as f64);

        let p = self.policy.params();
        let mut pol = m.scoped("policy");
        pol.set_gauge("bw", p.bw as f64);
        pol.set_gauge("cap", p.cap as f64);
        // `tok == usize::MAX` means "unthrottled"; emit -1 instead of a
        // 20-digit float.
        pol.set_gauge("tok", if p.tok == usize::MAX { -1.0 } else { p.tok as f64 });
        self.policy.collect_metrics(&mut pol);
    }

    /// Intern the static names emitted by [`Self::collect_metrics`] — same
    /// names, same order — under `prefix`, returning dense handles for
    /// [`Self::record_metrics`]. The policy's own metrics (emitted under
    /// `{prefix}.policy` *after* the `bw`/`cap`/`tok` gauges) are not
    /// covered: collect those with [`Self::collect_policy_metrics`]
    /// immediately after interning so their names land in fresh-collection
    /// order too.
    pub fn intern_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) -> HmcMetricHandles {
        let classes = ["cpu", "gpu"].map(|cls| {
            let p = format!("{prefix}.{cls}");
            ClassMetricHandles {
                accesses: reg.intern_counter(&format!("{p}.accesses")),
                fast_hits: reg.intern_counter(&format!("{p}.fast_hits")),
                fast_misses: reg.intern_counter(&format!("{p}.fast_misses")),
                migrations: reg.intern_counter(&format!("{p}.migrations")),
                bypasses: reg.intern_counter(&format!("{p}.bypasses")),
                migrations_denied: reg.intern_counter(&format!("{p}.migrations_denied")),
                buffer_denied: reg.intern_counter(&format!("{p}.buffer_denied")),
            }
        });
        HmcMetricHandles {
            classes,
            victim_writebacks: reg.intern_counter(&format!("{prefix}.victim_writebacks")),
            swaps: reg.intern_counter(&format!("{prefix}.swaps")),
            lazy_fixups: reg.intern_counter(&format!("{prefix}.lazy_fixups")),
            txns_started: reg.intern_counter(&format!("{prefix}.txns_started")),
            txns_retired: reg.intern_counter(&format!("{prefix}.txns_retired")),
            inflight: reg.intern_gauge(&format!("{prefix}.inflight")),
            bg_txns: reg.intern_gauge(&format!("{prefix}.bg_txns")),
            rc_hits: reg.intern_counter(&format!("{prefix}.remap_cache.hits")),
            rc_misses: reg.intern_counter(&format!("{prefix}.remap_cache.misses")),
            rc_writebacks: reg.intern_counter(&format!("{prefix}.remap_cache.writebacks")),
            meta_reads: reg.intern_counter(&format!("{prefix}.meta_reads")),
            meta_writebacks: reg.intern_counter(&format!("{prefix}.meta_writebacks")),
            occ_cpu: reg.intern_gauge(&format!("{prefix}.occ_ways.cpu")),
            occ_gpu: reg.intern_gauge(&format!("{prefix}.occ_ways.gpu")),
            pol_bw: reg.intern_gauge(&format!("{prefix}.policy.bw")),
            pol_cap: reg.intern_gauge(&format!("{prefix}.policy.cap")),
            pol_tok: reg.intern_gauge(&format!("{prefix}.policy.tok")),
        }
    }

    /// Store the current cumulative controller statistics through handles
    /// interned by [`Self::intern_metrics`]. Value-identical to the static
    /// portion of a fresh [`Self::collect_metrics`] pass.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, h: &HmcMetricHandles) {
        let s = &self.stats;
        for (i, c) in h.classes.iter().enumerate() {
            reg.set_counter(c.accesses, s.accesses[i]);
            reg.set_counter(c.fast_hits, s.fast_hits[i]);
            reg.set_counter(c.fast_misses, s.fast_misses[i]);
            reg.set_counter(c.migrations, s.migrations[i]);
            reg.set_counter(c.bypasses, s.bypasses[i]);
            reg.set_counter(c.migrations_denied, s.migrations_denied[i]);
            reg.set_counter(c.buffer_denied, s.buffer_denied[i]);
        }
        reg.set_counter(h.victim_writebacks, s.victim_writebacks);
        reg.set_counter(h.swaps, s.swaps);
        reg.set_counter(h.lazy_fixups, s.lazy_fixups);
        reg.set_counter(h.txns_started, self.txns_started);
        reg.set_counter(h.txns_retired, self.txns_retired);
        reg.set_gauge_id(h.inflight, self.inflight() as f64);
        reg.set_gauge_id(h.bg_txns, self.bg_txns as f64);
        let (rh, rm, rw) = self.rcache.counts();
        reg.set_counter(h.rc_hits, rh);
        reg.set_counter(h.rc_misses, rm);
        reg.set_counter(h.rc_writebacks, rw);
        reg.set_counter(h.meta_reads, s.meta_reads);
        reg.set_counter(h.meta_writebacks, s.meta_writebacks);
        let (occ_cpu, occ_gpu) = self.table.occupancy_by_class();
        reg.set_gauge_id(h.occ_cpu, occ_cpu as f64);
        reg.set_gauge_id(h.occ_gpu, occ_gpu as f64);
        let p = self.policy.params();
        reg.set_gauge_id(h.pol_bw, p.bw as f64);
        reg.set_gauge_id(h.pol_cap, p.cap as f64);
        reg.set_gauge_id(h.pol_tok, if p.tok == usize::MAX { -1.0 } else { p.tok as f64 });
    }

    /// Forward the policy's own metrics into `m` (callers scope under
    /// `{prefix}.policy` and typically use a set-mode scope so cumulative
    /// values overwrite instead of accumulate).
    pub fn collect_policy_metrics(&self, m: &mut h2_sim_core::ScopedMetrics<'_>) {
        self.policy.collect_metrics(m);
    }
}

/// Demand (and metadata, which gates demand) commands are scheduled above
/// background migration traffic: priority 1 + the policy's class priority.
/// The device's age escalation keeps background traffic from starving.
fn demand_priority(class_priority: u8) -> u8 {
    1 + class_priority
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SharedPolicy;
    use h2_sim_core::units::KIB;

    fn small_cfg() -> HybridConfig {
        HybridConfig {
            fast_capacity: 64 * KIB, // 64 sets x 4 ways x 256 B
            ..HybridConfig::default()
        }
    }

    fn hmc(cfg: HybridConfig) -> Hmc {
        let assoc = cfg.assoc;
        let ch = cfg.fast_channels;
        Hmc::new(cfg, Box::new(SharedPolicy::new(assoc, ch)), 42)
    }

    /// Drive the HMC synchronously: immediately complete every Mem/After.
    fn drive(h: &mut Hmc, req: u64, class: ReqClass, addr: u64, write: bool) -> DriveResult {
        let mut out = Vec::new();
        h.access(req, class, addr, write, true, &mut out);
        let mut res = DriveResult::default();
        let mut queue = out;
        while let Some(o) = queue.pop() {
            match o {
                HmcOutput::Mem { tier, cmd, .. } => {
                    match tier {
                        Tier::Fast => {
                            res.fast_cmds += 1;
                            res.fast_bytes += cmd.bytes as u64;
                        }
                        Tier::Slow => {
                            res.slow_cmds += 1;
                            res.slow_bytes += cmd.bytes as u64;
                        }
                    }
                    let mut nxt = Vec::new();
                    h.handle(HmcEvent::MemDone(cmd.token), &mut nxt);
                    queue.extend(nxt);
                }
                HmcOutput::After { token, .. } => {
                    let mut nxt = Vec::new();
                    h.handle(HmcEvent::SramDone(token), &mut nxt);
                    queue.extend(nxt);
                }
                HmcOutput::DemandReady { req_id } => {
                    assert_eq!(req_id, req);
                    res.responded = true;
                }
                HmcOutput::Retired { req_id } => {
                    assert_eq!(req_id, req);
                    res.retired = true;
                }
            }
        }
        res
    }

    #[derive(Debug, Default)]
    struct DriveResult {
        fast_cmds: u64,
        slow_cmds: u64,
        fast_bytes: u64,
        slow_bytes: u64,
        responded: bool,
        retired: bool,
    }

    #[test]
    fn cold_miss_migrates_with_7x_amplification_shape() {
        let mut h = hmc(small_cfg());
        let r = drive(&mut h, 1, ReqClass::Cpu, 0, false);
        assert!(r.responded && r.retired);
        // Demand 64 B + remainder 192 B from slow; 256 B write to fast.
        assert_eq!(r.slow_bytes, 64 + 192);
        assert!(r.fast_bytes >= 256);
        let s = h.stats();
        assert_eq!(s.fast_misses[0], 1);
        assert_eq!(s.migrations[0], 1);
    }

    #[test]
    fn second_access_hits_fast() {
        let mut h = hmc(small_cfg());
        drive(&mut h, 1, ReqClass::Cpu, 4096, false);
        let r = drive(&mut h, 2, ReqClass::Cpu, 4096 + 64, false);
        assert!(r.responded && r.retired);
        let s = h.stats();
        assert_eq!(s.fast_hits[0], 1);
        // Hit touches only fast memory: one 64 B demand.
        assert_eq!(r.slow_bytes, 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = small_cfg();
        let sets = cfg.num_sets();
        let block_bytes = cfg.block_bytes;
        let mut h = hmc(cfg);
        // Fill all 4 ways of set 0 with dirty blocks, then one more.
        for i in 0..4u64 {
            drive(&mut h, i, ReqClass::Cpu, i * sets * block_bytes, true);
        }
        let before = h.stats().victim_writebacks;
        let r = drive(&mut h, 9, ReqClass::Cpu, 4 * sets * block_bytes, false);
        assert_eq!(h.stats().victim_writebacks, before + 1);
        // Write-back adds a fast read + slow write of a full block.
        assert!(r.slow_bytes >= 64 + 192 + 256);
    }

    #[test]
    fn flat_mode_always_writes_back_victims() {
        let mut cfg = small_cfg();
        cfg.mode = Mode::Flat;
        let sets = cfg.num_sets();
        let bb = cfg.block_bytes;
        let mut h = hmc(cfg);
        for i in 0..4u64 {
            drive(&mut h, i, ReqClass::Cpu, i * sets * bb, false); // clean fills
        }
        drive(&mut h, 9, ReqClass::Cpu, 4 * sets * bb, false);
        assert_eq!(h.stats().victim_writebacks, 1, "flat evicts are swaps");
    }

    #[test]
    fn remap_cache_miss_costs_metadata_read() {
        let mut h = hmc(small_cfg());
        drive(&mut h, 1, ReqClass::Gpu, 0, false);
        assert_eq!(h.stats().meta_reads, 1, "cold metadata miss");
        drive(&mut h, 2, ReqClass::Gpu, 64, false);
        assert_eq!(h.stats().meta_reads, 1, "entry now cached on chip");
    }

    #[test]
    fn no_duplicate_tags_under_load() {
        let mut h = hmc(small_cfg());
        let mut rng = SeededRng::derive(3, "load");
        for i in 0..2000 {
            let addr = rng.below(1 << 22) & !63;
            let class = if rng.chance(0.5) { ReqClass::Cpu } else { ReqClass::Gpu };
            drive(&mut h, i, class, addr, rng.chance(0.3));
        }
        assert!(h.table().check_no_duplicate_tags());
        assert_eq!(h.inflight(), 0, "all txns retired");
    }

    #[test]
    fn chaining_places_conflicting_blocks() {
        let mut cfg = small_cfg();
        cfg.assoc = 1;
        cfg.chaining = true;
        let sets = cfg.num_sets();
        let bb = cfg.block_bytes;
        let mut h = Hmc::new(cfg, Box::new(SharedPolicy::new(1, 4)), 1);
        // Two blocks mapping to the same (direct-mapped) set.
        drive(&mut h, 1, ReqClass::Cpu, 0, false);
        drive(&mut h, 2, ReqClass::Cpu, sets * bb, false);
        // Both should now hit (second went to the chain set).
        let r1 = drive(&mut h, 3, ReqClass::Cpu, 0, false);
        let r2 = drive(&mut h, 4, ReqClass::Cpu, sets * bb, false);
        assert_eq!(r1.slow_bytes + r2.slow_bytes, 0, "both resident");
        assert_eq!(h.stats().fast_hits[0], 2);
    }

    #[test]
    fn write_bypass_goes_to_slow_home() {
        // A policy that never migrates: use SharedPolicy but fill the set
        // so mask has victims... simpler: empty mask via assoc=1 and a
        // policy that denies migration.
        struct NoMigrate;
        impl PartitionPolicy for NoMigrate {
            fn name(&self) -> &str {
                "nomigrate"
            }
            fn alloc_mask(&self, _s: u64, _c: ReqClass) -> u16 {
                0b1111
            }
            fn way_channel(&self, _s: u64, w: usize) -> usize {
                w % 4
            }
            fn migration_allowed(
                &mut self,
                _c: ReqClass,
                _k: u32,
                _w: bool,
                _ch: usize,
                _r: &mut SeededRng,
            ) -> bool {
                false
            }
            fn params(&self) -> crate::policy::PolicyParams {
                crate::policy::PolicyParams {
                    bw: 0,
                    cap: 0,
                    tok: 0,
                    label: "nomigrate".into(),
                }
            }
        }
        let mut h = Hmc::new(small_cfg(), Box::new(NoMigrate), 1);
        let r = drive(&mut h, 1, ReqClass::Gpu, 128, true);
        assert!(r.responded && r.retired);
        assert_eq!(r.slow_bytes, 64, "bypass touches only the demand line");
        assert_eq!(h.stats().bypasses[1], 1);
        assert_eq!(h.stats().migrations_denied[1], 1);
        // Still a miss next time: nothing was filled.
        drive(&mut h, 2, ReqClass::Gpu, 128, false);
        assert_eq!(h.stats().fast_misses[1], 2);
    }

    #[test]
    fn txn_conservation_and_metrics() {
        let mut h = hmc(small_cfg());
        for i in 0..20u64 {
            drive(&mut h, i, ReqClass::Cpu, i * 8192, i % 3 == 0);
        }
        assert_eq!(h.txns_started(), 20);
        assert_eq!(h.txns_retired(), 20);
        assert_eq!(h.txns_started(), h.txns_retired() + h.inflight() as u64);
        let mut reg = h2_sim_core::MetricsRegistry::new(true);
        h.collect_metrics(&mut reg.scoped("hmc"));
        assert_eq!(reg.counter("hmc.cpu.accesses"), 20);
        assert_eq!(reg.counter("hmc.txns_started"), 20);
        assert_eq!(
            reg.counter("hmc.cpu.fast_hits") + reg.counter("hmc.cpu.fast_misses"),
            reg.counter("hmc.cpu.accesses")
        );
        assert_eq!(reg.gauge("hmc.inflight"), Some(0.0));
        assert_eq!(reg.gauge("hmc.policy.tok"), Some(-1.0), "shared = unthrottled");
    }

    #[test]
    fn epoch_delta_resets() {
        let mut h = hmc(small_cfg());
        drive(&mut h, 1, ReqClass::Cpu, 0, false);
        let d1 = h.epoch_delta();
        assert_eq!(d1.accesses[0], 1);
        h.on_epoch(&crate::policy::EpochSample::default());
        let d2 = h.epoch_delta();
        assert_eq!(d2.accesses[0], 0);
    }
}
