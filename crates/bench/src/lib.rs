//! Bench-only crate: the paper targets in `benches/` — one standalone
//! (harness = false) target per table/figure that prints the reproduced
//! rows and writes CSVs — plus `micro`, microbenchmarks of the simulator's
//! hot paths built on the tiny harness below.
//!
//! The harness is in-repo (no criterion: the workspace builds with zero
//! external dependencies). It understands cargo's bench conventions:
//! `cargo bench --bench micro -- --test` runs every benchmark once as a
//! smoke test; a trailing plain argument filters benchmarks by substring.

use h2_sim_core::Json;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Machine-readable results file written by [`Bench::finish`] at the repo
/// root (next to `.git`), consumed by CI as a perf-tracking artifact.
pub const RESULTS_FILE: &str = "BENCH_tracing.json";

/// Parsed bench CLI: `[filter] [--test]` (cargo's own flags are ignored).
pub struct BenchArgs {
    /// Substring filter on benchmark names.
    pub filter: Option<String>,
    /// Smoke mode: one iteration per benchmark, no timing statistics.
    pub test: bool,
}

impl BenchArgs {
    /// Parse `std::env::args`, ignoring flags cargo's harness would eat.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut test = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { filter, test }
    }
}

/// A named group of benchmarks sharing the CLI args.
pub struct Bench {
    args: BenchArgs,
    ran: usize,
    results: Vec<(String, u64)>,
}

impl Bench {
    /// New runner from the process args.
    pub fn new() -> Self {
        Self { args: BenchArgs::from_env(), ran: 0, results: Vec::new() }
    }

    /// Whether `name` passes the CLI filter.
    fn selected(&self, name: &str) -> bool {
        self.args
            .filter
            .as_deref()
            .is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark: `f` is one iteration whose result is blackboxed.
    /// Prints `name ... <ns>/iter`, or runs once in `--test` mode.
    /// Returns the measured ns/iter (0 in `--test` mode or when filtered).
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> u64 {
        if !self.selected(name) {
            return 0;
        }
        self.ran += 1;
        if self.args.test {
            black_box(f());
            println!("test {name} ... ok");
            return 0;
        }
        // Warm up and size the batch so one measured pass is ~50ms.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(30) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let batch = (50_000_000 / per_iter.max(1)).clamp(1, 10_000_000);

        // Best-of-5 batches: robust to scheduler noise, biased low like
        // most micro harnesses.
        let mut best = u64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as u64 / batch;
            best = best.min(ns);
        }
        println!("{name:<44} {best:>12} ns/iter");
        self.results.push((name.to_string(), best));
        best
    }

    /// The measured results as a machine-readable JSON document:
    /// `{"schema": 1, "benches": [{name, ns_per_iter, events_per_sec}]}`.
    fn results_json(&self) -> Json {
        let mut benches = Json::arr();
        for (name, ns) in &self.results {
            benches.push(
                Json::obj()
                    .field("name", name.as_str())
                    .field("ns_per_iter", *ns)
                    .field("events_per_sec", 1e9 / (*ns).max(1) as f64),
            );
        }
        Json::obj().field("schema", 1u64).field("benches", benches)
    }

    /// Final line; exits non-zero if a filter matched nothing. Measured
    /// (non `--test`) runs also append their results to the repo-root
    /// [`RESULTS_FILE`] so CI can upload one perf artifact per bench run.
    pub fn finish(self) {
        if self.ran == 0 {
            eprintln!("no benchmarks matched the filter");
            std::process::exit(1);
        }
        if self.args.test {
            println!("\n{} benchmarks ran in --test mode", self.ran);
            return;
        }
        if self.results.is_empty() {
            return;
        }
        let path = repo_root().join(RESULTS_FILE);
        let mut doc = self.results_json().to_string_pretty();
        if !doc.ends_with('\n') {
            doc.push('\n');
        }
        match std::fs::write(&path, doc) {
            Ok(()) => println!("results: {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// The nearest ancestor directory holding `.git` (the repo root); falls
/// back to the CWD so bench runs outside a checkout still land somewhere.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut at = cwd.as_path();
    loop {
        if at.join(".git").is_dir() {
            return at.to_path_buf();
        }
        match at.parent() {
            Some(p) => at = p,
            None => return cwd,
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bench(filter: Option<&str>) -> Bench {
        Bench {
            args: BenchArgs { filter: filter.map(str::to_string), test: true },
            ran: 0,
            results: Vec::new(),
        }
    }

    #[test]
    fn filter_matching() {
        let b = test_bench(Some("queue"));
        assert!(b.selected("event_queue_4k"));
        assert!(!b.selected("dram_channel"));
        let b = test_bench(None);
        assert!(b.selected("anything"));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = test_bench(None);
        let mut count = 0;
        b.bench("x", || count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.ran, 1);
        assert!(b.results.is_empty(), "--test mode records no timings");
    }

    #[test]
    fn results_json_shape() {
        let mut b = test_bench(None);
        b.results.push(("span_collector".into(), 250));
        b.results.push(("chrome_export".into(), 4));
        let s = b.results_json().to_string_compact();
        assert!(s.contains(r#""schema":1"#));
        assert!(s.contains(r#""name":"span_collector""#));
        assert!(s.contains(r#""ns_per_iter":250"#));
        assert!(s.contains(r#""events_per_sec":4000000.0"#), "{s}");
    }
}
