//! Bench-only crate: all content lives in `benches/` — one standalone
//! (harness = false) target per paper table/figure that prints the
//! reproduced rows and writes CSVs, plus criterion microbenchmarks of the
//! simulator's hot paths (`micro`).
