//! Bench-only crate: the paper targets in `benches/` — one standalone
//! (harness = false) target per table/figure that prints the reproduced
//! rows and writes CSVs — plus `micro`, microbenchmarks of the simulator's
//! hot paths built on the tiny harness below.
//!
//! The harness is in-repo (no criterion: the workspace builds with zero
//! external dependencies). It understands cargo's bench conventions:
//! `cargo bench --bench micro -- --test` runs every benchmark once as a
//! smoke test; a trailing plain argument filters benchmarks by substring.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Parsed bench CLI: `[filter] [--test]` (cargo's own flags are ignored).
pub struct BenchArgs {
    /// Substring filter on benchmark names.
    pub filter: Option<String>,
    /// Smoke mode: one iteration per benchmark, no timing statistics.
    pub test: bool,
}

impl BenchArgs {
    /// Parse `std::env::args`, ignoring flags cargo's harness would eat.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut test = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { filter, test }
    }
}

/// A named group of benchmarks sharing the CLI args.
pub struct Bench {
    args: BenchArgs,
    ran: usize,
}

impl Bench {
    /// New runner from the process args.
    pub fn new() -> Self {
        Self { args: BenchArgs::from_env(), ran: 0 }
    }

    /// Whether `name` passes the CLI filter.
    fn selected(&self, name: &str) -> bool {
        self.args
            .filter
            .as_deref()
            .is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark: `f` is one iteration whose result is blackboxed.
    /// Prints `name ... <ns>/iter`, or runs once in `--test` mode.
    /// Returns the measured ns/iter (0 in `--test` mode or when filtered).
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> u64 {
        if !self.selected(name) {
            return 0;
        }
        self.ran += 1;
        if self.args.test {
            black_box(f());
            println!("test {name} ... ok");
            return 0;
        }
        // Warm up and size the batch so one measured pass is ~50ms.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(30) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let batch = (50_000_000 / per_iter.max(1)).clamp(1, 10_000_000);

        // Best-of-5 batches: robust to scheduler noise, biased low like
        // most micro harnesses.
        let mut best = u64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as u64 / batch;
            best = best.min(ns);
        }
        println!("{name:<44} {best:>12} ns/iter");
        best
    }

    /// Final line; exits non-zero if a filter matched nothing.
    pub fn finish(self) {
        if self.ran == 0 {
            eprintln!("no benchmarks matched the filter");
            std::process::exit(1);
        }
        if self.args.test {
            println!("\n{} benchmarks ran in --test mode", self.ran);
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matching() {
        let b = Bench { args: BenchArgs { filter: Some("queue".into()), test: true }, ran: 0 };
        assert!(b.selected("event_queue_4k"));
        assert!(!b.selected("dram_channel"));
        let b = Bench { args: BenchArgs { filter: None, test: true }, ran: 0 };
        assert!(b.selected("anything"));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bench { args: BenchArgs { filter: None, test: true }, ran: 0 };
        let mut count = 0;
        b.bench("x", || count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.ran, 1);
    }
}
