//! Criterion microbenchmarks of the simulator's hot paths: the event queue,
//! the DRAM device scheduler, the remap table, rendezvous hashing, trace
//! generation, and a short whole-system run (events/second).

use criterion::{criterion_group, criterion_main, Criterion};
use h2_hybrid::remap::RemapTable;
use h2_hybrid::types::{HybridConfig, ReqClass};
use h2_hydrogen::partition::PartitionMap;
use h2_mem::{MemCmd, MemDevice, TimingPreset};
use h2_sim_core::EventQueue;
use h2_system::{run_sim, PolicyKind, SystemConfig};
use h2_trace::workloads;
use h2_trace::Mix;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at((i * 7919) % 5000, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        })
    });
}

fn bench_dram_device(c: &mut Criterion) {
    c.bench_function("dram_channel_1k_cmds", |b| {
        b.iter(|| {
            let mut d = MemDevice::new(TimingPreset::Ddr4.timing(), 1);
            let mut out = Vec::new();
            let mut now = 0;
            for i in 0..1000u64 {
                d.enqueue(
                    0,
                    MemCmd {
                        addr: (i * 12289) % (1 << 26),
                        bytes: 64,
                        is_write: i % 3 == 0,
                        priority: 0,
                        token: i,
                    },
                    now,
                );
                d.pump(0, now, &mut out);
                if let Some(s) = out.pop() {
                    now = s.done_at;
                    d.on_complete(0);
                }
                out.clear();
            }
            black_box(d.stats().bytes)
        })
    });
}

fn bench_remap_table(c: &mut Criterion) {
    let cfg = HybridConfig::default();
    c.bench_function("remap_table_lookup_fill", |b| {
        let mut t = RemapTable::new(&cfg);
        let sets = cfg.num_sets();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let set = (i * 48271) % sets;
            let tag = i % 97;
            match t.lookup(set, tag) {
                Some(w) => t.touch(set, w, false),
                None => {
                    if let Some(w) = t.pick_victim(set, 0b1111) {
                        t.fill(set, w, tag, ReqClass::Cpu, false);
                    }
                }
            }
            black_box(())
        })
    });
}

fn bench_partition_map(c: &mut Criterion) {
    let m = PartitionMap::new(4, 1, 3);
    c.bench_function("rendezvous_cpu_mask", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            black_box(m.cpu_mask(s))
        })
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    let spec = workloads::by_name("mcf").unwrap();
    c.bench_function("trace_gen_mcf_ref", |b| {
        let mut g = spec.instantiate(1, 0, 0, 8);
        b.iter(|| black_box(g.next_ref()))
    });
}

fn bench_full_system(c: &mut Criterion) {
    let mut cfg = SystemConfig::tiny();
    cfg.warmup_cycles = 50_000;
    cfg.measure_cycles = 100_000;
    let mix = Mix::by_name("C1").unwrap();
    let mut g = c.benchmark_group("full_system");
    g.sample_size(10);
    g.bench_function("tiny_c1_hydrogen_150k_cycles", |b| {
        b.iter(|| black_box(run_sim(&cfg, &mix, PolicyKind::HydrogenFull).events_processed))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_dram_device,
    bench_remap_table,
    bench_partition_map,
    bench_trace_gen,
    bench_full_system
);
criterion_main!(benches);
