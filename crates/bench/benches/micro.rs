//! Microbenchmarks of the simulator's hot paths: the event queue (calendar
//! vs legacy heap engine, several depths and horizons), run-cache job-key
//! hashing, the DRAM device scheduler, the remap table, rendezvous hashing,
//! trace generation, and a short whole-system run.
//!
//! `cargo bench --bench micro` times everything; `-- --test` smoke-runs
//! each once; a plain argument filters by substring (e.g. `-- queue`).

use h2_bench::Bench;
use h2_harness::cache::Job;
use h2_hybrid::remap::RemapTable;
use h2_hybrid::types::{HybridConfig, ReqClass};
use h2_hydrogen::partition::PartitionMap;
use h2_mem::{MemCmd, MemDevice, TimingPreset};
use h2_sim_core::{EngineKind, EventQueue};
use h2_system::{run_sim, PolicyKind, SystemConfig};
use h2_trace::workloads;
use h2_trace::Mix;
use std::hint::black_box;

/// Steady-state round: schedule `depth` events relative to `now`, drain
/// them all. The queue is constructed once outside the timed region — real
/// simulations build one queue and push hundreds of millions of events
/// through it, so construction is fully amortised.
fn queue_round(q: &mut EventQueue<u64>, depth: u64, horizon: u64) -> u64 {
    let now = q.now();
    for i in 0..depth {
        q.schedule_at(now + (i * 7919) % horizon, i);
    }
    let mut sum = 0u64;
    while let Some(e) = q.pop() {
        sum = sum.wrapping_add(e.payload);
    }
    sum
}

fn bench_event_queue(b: &mut Bench) {
    for depth in [256u64, 1024, 4096, 16_384] {
        // Near-horizon: everything lands in the calendar wheel, the common
        // case during simulation (latencies are tens-to-thousands of cycles).
        let horizon = 5000.max(depth / 2);
        for (tag, kind) in [("calendar", EngineKind::Calendar), ("heap", EngineKind::Heap)] {
            let mut q = EventQueue::with_engine(kind);
            b.bench(&format!("event_queue_{tag}_{depth}"), move || {
                black_box(queue_round(&mut q, depth, horizon))
            });
        }
    }
    // Mixed horizon: ~1/8 of events far in the future (epoch/faucet timers),
    // exercising the overflow heap and its drain path.
    for (tag, kind) in [("calendar", EngineKind::Calendar), ("heap", EngineKind::Heap)] {
        let mut q = EventQueue::with_engine(kind);
        b.bench(&format!("event_queue_{tag}_4096_mixed"), move || {
            let now = q.now();
            for i in 0..4096u64 {
                let t = if i % 8 == 0 {
                    100_000 + (i * 104_729) % 3_000_000
                } else {
                    (i * 7919) % 5000
                };
                q.schedule_at(now + t, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        });
    }
}

fn bench_job_key(b: &mut Bench) {
    let cfg = SystemConfig::paper();
    let mix = Mix::by_name("C1").unwrap();
    let job = Job::new(&cfg, &mix, PolicyKind::HydrogenFull);
    b.bench("cache_job_key_u128", || black_box(job.key()));
}

fn bench_dram_device(b: &mut Bench) {
    b.bench("dram_channel_1k_cmds", || {
        let mut d = MemDevice::new(TimingPreset::Ddr4.timing(), 1);
        let mut out = Vec::new();
        let mut now = 0;
        for i in 0..1000u64 {
            d.enqueue(
                0,
                MemCmd {
                    addr: (i * 12289) % (1 << 26),
                    bytes: 64,
                    is_write: i % 3 == 0,
                    priority: 0,
                    token: i,
                },
                now,
            );
            d.pump(0, now, &mut out);
            if let Some(s) = out.pop() {
                now = s.done_at;
                d.on_complete(0);
            }
            out.clear();
        }
        black_box(d.stats().bytes)
    });
}

fn bench_remap_table(b: &mut Bench) {
    let cfg = HybridConfig::default();
    let mut t = RemapTable::new(&cfg);
    let sets = cfg.num_sets();
    let mut i = 0u64;
    b.bench("remap_table_lookup_fill", || {
        i += 1;
        let set = (i * 48271) % sets;
        let tag = i % 97;
        match t.lookup(set, tag) {
            Some(w) => t.touch(set, w, false),
            None => {
                if let Some(w) = t.pick_victim(set, 0b1111) {
                    t.fill(set, w, tag, ReqClass::Cpu, false);
                }
            }
        }
    });
}

fn bench_partition_map(b: &mut Bench) {
    let m = PartitionMap::new(4, 1, 3);
    let mut s = 0u64;
    b.bench("rendezvous_cpu_mask", || {
        s += 1;
        black_box(m.cpu_mask(s))
    });
}

fn bench_trace_gen(b: &mut Bench) {
    let spec = workloads::by_name("mcf").unwrap();
    let mut g = spec.instantiate(1, 0, 0, 8);
    b.bench("trace_gen_mcf_ref", || black_box(g.next_ref()));
}

fn bench_span_collector(b: &mut Bench) {
    use h2_sim_core::trace_span::{BlameCause, SpanCollector};
    // One sampled request's full lifecycle: sample, open, meta + device
    // intervals, close (sort, coalesce, tiling check, blame fold).
    let mut c = SpanCollector::new(Some(1));
    let mut t = 0u64;
    b.bench("trace_span_lifecycle", || {
        let id = c.try_sample().expect("rate 1 samples everything");
        c.open(id, (t % 2) as u8, t);
        c.record(id, BlameCause::RemapMiss, t, t + 8);
        c.record(id, BlameCause::QueueBehindGpu, t + 8, t + 40);
        c.record(id, BlameCause::RowConflict, t + 40, t + 55);
        c.record(id, BlameCause::Service, t + 55, t + 80);
        c.close(id, t + 80);
        t += 80;
        // Keep the collector from accumulating unbounded state.
        if c.spans_closed() >= 4096 {
            black_box(c.take_spans());
        }
        black_box(t)
    });

    // The disabled path: what every untraced request pays (must be ~free).
    let mut off = SpanCollector::new(None);
    b.bench("trace_span_disabled_probe", || black_box(off.try_sample()));
}

fn bench_traced_full_system(b: &mut Bench) {
    let mut cfg = SystemConfig::tiny();
    cfg.warmup_cycles = 50_000;
    cfg.measure_cycles = 100_000;
    cfg.trace_sample = Some(64);
    let mix = Mix::by_name("C1").unwrap();
    b.bench("full_system_tiny_c1_150k_traced", move || {
        black_box(run_sim(&cfg, &mix, PolicyKind::HydrogenFull).events_processed)
    });
}

fn bench_full_system(b: &mut Bench) {
    let mut cfg = SystemConfig::tiny();
    cfg.warmup_cycles = 50_000;
    cfg.measure_cycles = 100_000;
    let mix = Mix::by_name("C1").unwrap();
    for (tag, kind) in [("calendar", EngineKind::Calendar), ("heap", EngineKind::Heap)] {
        cfg.engine = kind;
        let c = cfg.clone();
        let m = mix.clone();
        b.bench(&format!("full_system_tiny_c1_150k_{tag}"), move || {
            black_box(run_sim(&c, &m, PolicyKind::HydrogenFull).events_processed)
        });
    }
}

fn main() {
    let mut b = Bench::new();
    bench_event_queue(&mut b);
    bench_job_key(&mut b);
    bench_dram_device(&mut b);
    bench_remap_table(&mut b);
    bench_partition_map(&mut b);
    bench_trace_gen(&mut b);
    bench_span_collector(&mut b);
    bench_full_system(&mut b);
    bench_traced_full_system(&mut b);
    b.finish();
}
