//! `cargo bench --bench fig10_weights_cores` regenerates the paper's fig10 rows.
//! Scale with H2_PROFILE=quick|default|full. CSVs land in results/.

fn main() {
    // cargo passes --bench/--test harness flags; ignore them.
    let profile = h2_harness::Profile::from_env();
    let mut cache = h2_harness::RunCache::persistent();
    let tables = h2_harness::run_experiment("fig10", &profile, &mut cache)
        .expect("known experiment id");
    for t in tables {
        println!("{}", t.render());
        // CSVs go to the workspace-root results/ regardless of cargo's CWD.
        let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if let Ok(p) = t.write_csv(&results) {
            println!("csv: {}\n", p.display());
        }
    }
    eprintln!("[fig10_weights_cores] {} simulations executed", cache.executed);
}
