//! Persistence-schema migration and corruption handling (tier 2).
//!
//! The run cache must treat every damaged or outdated `.runcache` entry
//! as a miss — silently re-executing the simulation — and must never
//! panic on untrusted bytes: entries written by older schema versions,
//! truncated by a crash mid-write, or corrupted on disk.

use h2_harness::cache::{Job, RunCache};
use h2_harness::persist::cache_tag;
use h2_system::{PolicyKind, SystemConfig};
use h2_trace::Mix;
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("h2-persist-mig-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny_job() -> Job {
    let mut cfg = SystemConfig::tiny();
    cfg.warmup_cycles = 100_000;
    cfg.measure_cycles = 200_000;
    Job::new(&cfg, &Mix::by_name("C1").unwrap(), PolicyKind::NoPart)
}

/// All files under `dir` (one level of shard subdirectories deep) whose
/// extension is `ext`.
fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir).unwrap().flatten() {
        let p = entry.path();
        if p.is_dir() {
            found.extend(
                fs::read_dir(&p)
                    .unwrap()
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == ext)),
            );
        } else if p.extension().is_some_and(|x| x == ext) {
            found.push(p);
        }
    }
    found
}

/// The single `.h2r` entry file in `dir` (the store shards entries into
/// key-prefix subdirectories).
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries = files_with_ext(dir, "h2r");
    assert_eq!(entries.len(), 1, "expected exactly one cache entry in {dir:?}");
    entries.pop().unwrap()
}

/// Populate a cache dir with one entry and return (dir, its file, the
/// fresh report's deterministic fingerprint).
fn populate(name: &str) -> (PathBuf, PathBuf, u64) {
    let dir = scratch(name);
    let job = tiny_job();
    let report = {
        let mut cache = RunCache::with_disk_dir(&dir).unwrap();
        cache.run(&job)
    };
    (dir.clone(), entry_file(&dir), report.cpu_instr)
}

/// After `damage` is applied to the entry file, a fresh cache must
/// re-execute (no disk hit, no panic) and reproduce the same result.
fn assert_reexecuted(name: &str, damage: impl FnOnce(&Path)) {
    let (dir, entry, fingerprint) = populate(name);
    damage(&entry);
    let mut cache = RunCache::with_disk_dir(&dir).unwrap();
    let report = cache.run(&tiny_job());
    assert_eq!(cache.disk_hits, 0, "{name}: damaged entry must not count as a hit");
    assert_eq!(cache.executed, 1, "{name}: damaged entry must be re-executed");
    assert_eq!(report.cpu_instr, fingerprint, "{name}: re-execution must reproduce the run");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn intact_entries_replay_without_execution() {
    let (dir, _, fingerprint) = populate("intact");
    let mut cache = RunCache::with_disk_dir(&dir).unwrap();
    let report = cache.run(&tiny_job());
    assert_eq!((cache.disk_hits, cache.executed), (1, 0));
    assert_eq!(report.cpu_instr, fingerprint);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_entry_is_evicted_and_reexecuted() {
    assert_reexecuted("garbage", |entry| {
        fs::write(entry, b"this is not an H2RC entry at all").unwrap();
    });
}

#[test]
fn truncated_entries_never_panic() {
    // A crash mid-write can leave any prefix; sweep a range of cut points
    // including mid-header, mid-string, and one byte short of complete.
    let (dir, entry, fingerprint) = populate("truncated");
    let full = fs::read(&entry).unwrap();
    for cut in [0, 1, 3, 4, 7, 8, 20, full.len() / 2, full.len() - 1] {
        fs::write(&entry, &full[..cut]).unwrap();
        let mut cache = RunCache::with_disk_dir(&dir).unwrap();
        let report = cache.run(&tiny_job());
        assert_eq!(
            (cache.disk_hits, cache.executed),
            (0, 1),
            "cut at {cut} bytes must read as a miss"
        );
        assert_eq!(report.cpu_instr, fingerprint);
        // run() re-stored the entry; restore the damaged state for the
        // next cut from our pristine copy.
        fs::write(&entry, &full).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn old_schema_version_entry_is_rejected() {
    // The on-disk header is `H2RC` magic then a little-endian u32 schema
    // version at byte offset 4. An entry from an older (or newer) codec
    // must decode as a miss, not a panic or a wrong-schema read.
    for version in [1u32, 2, u32::MAX] {
        assert_reexecuted("schema-version", move |entry| {
            let mut bytes = fs::read(entry).unwrap();
            bytes[4..8].copy_from_slice(&version.to_le_bytes());
            fs::write(entry, &bytes).unwrap();
        });
    }
}

#[test]
fn version_file_mismatch_wipes_stale_entries() {
    // A codec upgrade bumps the directory tag; opening the tier with a
    // mismatched VERSION file must evict wholesale and restart cold.
    let (dir, entry, fingerprint) = populate("version-file");
    fs::write(dir.join("VERSION"), "schema0+v0.0.0-ancient").unwrap();
    let mut cache = RunCache::with_disk_dir(&dir).unwrap();
    assert!(!entry.exists(), "stale entry should be wiped on open");
    assert_eq!(fs::read_to_string(dir.join("VERSION")).unwrap(), cache_tag());
    let report = cache.run(&tiny_job());
    assert_eq!((cache.disk_hits, cache.executed), (0, 1));
    assert_eq!(report.cpu_instr, fingerprint);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn writer_death_before_rename_publishes_nothing() {
    // Crash-consistency: a writer that dies after writing its temp file
    // but before the rename must leave no visible entry — only an
    // abandoned temp — and the next run re-executes and publishes a good
    // entry alongside it.
    use h2_harness::sweep::store::{CommitFault, ShardedStore, STALE_TMP};
    let dir = scratch("die-before-rename");
    let job = tiny_job();
    let fingerprint = {
        let mut cache = RunCache::with_disk_dir(&dir).unwrap();
        cache.disk_store().unwrap().set_commit_fault(CommitFault::DieBeforeRename);
        cache.run(&job).cpu_instr
    };
    assert!(files_with_ext(&dir, "h2r").is_empty(), "no entry may be visible");
    assert_eq!(files_with_ext(&dir, "tmp").len(), 1, "the orphaned temp remains");

    let mut cache = RunCache::with_disk_dir(&dir).unwrap();
    let report = cache.run(&tiny_job());
    assert_eq!((cache.disk_hits, cache.executed), (0, 1), "abandoned commit reads as a miss");
    assert_eq!(report.cpu_instr, fingerprint);
    assert_eq!(files_with_ext(&dir, "h2r").len(), 1, "healthy commit published");

    // gc with a zero TTL sweeps the orphan.
    let store = ShardedStore::open(&dir).unwrap();
    let gc = store.gc(u64::MAX, std::time::Duration::ZERO).unwrap();
    assert_eq!(gc.tmp_removed, 1);
    assert_eq!(gc.evicted, 0);
    let _ = STALE_TMP; // the production TTL exists and is non-zero
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_rename_target_is_quarantined_and_reexecuted() {
    // Crash-consistency: simulate a torn entry *after* the rename (e.g. a
    // kernel crash before data blocks hit disk). The store must detect
    // the damage on load, quarantine the file as `*.bad`, re-execute, and
    // publish a fresh entry over it.
    use h2_harness::sweep::store::CommitFault;
    for cut in [0u64, 8, 40] {
        let dir = scratch("truncate-target");
        let job = tiny_job();
        let fingerprint = {
            let mut cache = RunCache::with_disk_dir(&dir).unwrap();
            cache.disk_store().unwrap().set_commit_fault(CommitFault::TruncateTarget(cut));
            cache.run(&job).cpu_instr
        };
        let entry = entry_file(&dir);
        assert_eq!(fs::metadata(&entry).unwrap().len(), cut, "entry is torn");

        let mut cache = RunCache::with_disk_dir(&dir).unwrap();
        let report = cache.run(&tiny_job());
        assert_eq!((cache.disk_hits, cache.executed), (0, 1), "cut={cut}: torn entry is a miss");
        assert_eq!(report.cpu_instr, fingerprint);
        assert_eq!(cache.disk_store().unwrap().quarantined(), 1, "cut={cut}: quarantined");
        assert_eq!(files_with_ext(&dir, "bad").len(), 1);
        assert_eq!(files_with_ext(&dir, "h2r").len(), 1, "good entry re-published");

        // The re-published entry serves the next cache cold.
        let mut warm = RunCache::with_disk_dir(&dir).unwrap();
        warm.run(&tiny_job());
        assert_eq!((warm.disk_hits, warm.executed), (1, 0));
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn same_key_concurrent_stores_never_tear() {
    // Regression for the flat-layout race: the old temp-file name was
    // `<key>.h2r.tmp<pid>`, identical for every thread of one process, so
    // two same-key writers interleaved `fs::write` calls and could rename
    // a torn file into place. Unique temp names make the race benign:
    // whatever rename lands last, the visible entry is complete.
    use h2_harness::sweep::store::ShardedStore;
    use std::sync::Arc;
    let dir = scratch("same-key-race");
    let store = Arc::new(ShardedStore::open(&dir).unwrap());
    let report = {
        let mut cache = RunCache::new();
        cache.run(&tiny_job())
    };
    let key = tiny_job().key();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let report = report.clone();
            s.spawn(move || {
                for _ in 0..25 {
                    store.store(key, &report).unwrap();
                }
            });
        }
    });
    assert_eq!(store.entries(), 1);
    assert_eq!(files_with_ext(&dir, "tmp").len(), 0, "no abandoned temps");
    let loaded = ShardedStore::open(&dir).unwrap().load(key).expect("entry intact");
    assert_eq!(loaded.cpu_instr, report.cpu_instr);
    assert_eq!(store.quarantined(), 0, "nothing was ever torn");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_bytes_decode_as_miss_or_identical() {
    // Bit flips beyond the header either fail decoding (a miss) or — if
    // they land in unvalidated payload such as a float — produce *some*
    // decoded report; they must never panic. Flip a spread of positions.
    let (dir, entry, _) = populate("bitflip");
    let full = fs::read(&entry).unwrap();
    for pos in (8..full.len()).step_by(full.len() / 23) {
        let mut bytes = full.clone();
        bytes[pos] ^= 0xA5;
        fs::write(&entry, &bytes).unwrap();
        let mut cache = RunCache::with_disk_dir(&dir).unwrap();
        let _ = cache.run(&tiny_job()); // must not panic
        fs::write(&entry, &full).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}
