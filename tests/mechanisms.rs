//! Behavioural tests of the paper's mechanisms at system level: token
//! throttling really reduces slow-tier pressure from GPU migrations, the
//! swap engine runs, capacity scaling behaves monotonically, and the
//! climbing variant adapts.

use hydrogen_repro::prelude::*;

fn tiny() -> SystemConfig {
    SystemConfig::tiny()
}

#[test]
fn tokens_throttle_gpu_migrations() {
    let cfg = tiny();
    let mix = Mix::by_name("C5").unwrap(); // streamcluster: migration-heavy
    let open = run_sim(&cfg, &mix, PolicyKind::HydrogenStatic { bw: 1, cap: 3, tok: 7 });
    let tight = run_sim(&cfg, &mix, PolicyKind::HydrogenStatic { bw: 1, cap: 3, tok: 0 });
    assert!(
        tight.hmc.migrations[1] < open.hmc.migrations[1],
        "tok=2.5% must migrate less than tok=100%: {} vs {}",
        tight.hmc.migrations[1],
        open.hmc.migrations[1]
    );
    assert!(tight.hmc.migrations_denied[1] > open.hmc.migrations_denied[1]);
}

#[test]
fn swap_engine_moves_hot_cpu_blocks() {
    let cfg = tiny();
    let mix = Mix::by_name("C1").unwrap();
    // Static DP with one dedicated channel: swaps should occur.
    let r = run_sim(&cfg, &mix, PolicyKind::HydrogenStatic { bw: 1, cap: 3, tok: 7 });
    assert!(r.hmc.swaps > 0, "expected fast-memory swaps");
    // Without dedicated channels there is nowhere to swap to.
    let r0 = run_sim(&cfg, &mix, PolicyKind::HydrogenStatic { bw: 0, cap: 3, tok: 7 });
    assert_eq!(r0.hmc.swaps, 0);
}

#[test]
fn more_fast_capacity_helps_cpu_hit_rate() {
    let mix = Mix::by_name("C1").unwrap();
    let mut small = tiny();
    small.fast_capacity_override = Some(small.fast_capacity_for(&mix) / 4);
    let mut big = tiny();
    big.fast_capacity_override = Some(big.fast_capacity_for(&mix) * 2);
    let rs = run_sim(&small, &mix, PolicyKind::NoPart);
    let rb = run_sim(&big, &mix, PolicyKind::NoPart);
    let hr = |r: &hydrogen_repro::prelude::RunReport| {
        r.hmc.fast_hits[0] as f64 / (r.hmc.fast_hits[0] + r.hmc.fast_misses[0]).max(1) as f64
    };
    assert!(
        hr(&rb) > hr(&rs),
        "hit rate should grow with capacity: {:.3} vs {:.3}",
        hr(&rb),
        hr(&rs)
    );
}

#[test]
fn hbm3_is_never_slower_than_hbm2e_for_baseline() {
    let mix = Mix::by_name("C5").unwrap();
    let cfg2 = tiny();
    let mut cfg3 = tiny();
    cfg3.fast_preset = hydrogen_repro::mem::TimingPreset::Hbm3Super;
    let r2 = run_sim(&cfg2, &mix, PolicyKind::NoPart);
    let r3 = run_sim(&cfg3, &mix, PolicyKind::NoPart);
    assert!(
        r3.weighted_ipc() >= r2.weighted_ipc() * 0.98,
        "doubling fast bandwidth should not hurt: {:.4} vs {:.4}",
        r3.weighted_ipc(),
        r2.weighted_ipc()
    );
}

#[test]
fn climbing_reconfigures_and_records_a_trace() {
    let mut cfg = tiny();
    // More epochs so the climber gets to move.
    cfg.measure_cycles = 500_000;
    let mix = Mix::by_name("C5").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    assert!(!r.epoch_trace.is_empty());
    // The trace carries the applied configurations and the search moved at
    // least once from the initial (1, 3, 3).
    let moved = r
        .epoch_trace
        .iter()
        .any(|e| e.reconfigured || (e.bw, e.cap) != (1, 3));
    assert!(moved, "climber never moved: {:?}", &r.epoch_trace[..4.min(r.epoch_trace.len())]);
}

#[test]
fn hashcache_geometry_is_direct_mapped_with_chaining() {
    let mut cfg = tiny();
    cfg.assoc = 1;
    let mix = Mix::by_name("C8").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::HashCache);
    assert!(r.cpu_instr > 0 && r.gpu_instr > 0);
    // Direct-mapped: still a functioning cache.
    assert!(r.hmc.fast_hits[0] > 0);
}

#[test]
fn weights_shift_the_optimisation_target() {
    let mut cpu_heavy = tiny();
    cpu_heavy.weights = (32.0, 1.0);
    cpu_heavy.measure_cycles = 500_000;
    let mut gpu_heavy = cpu_heavy.clone();
    gpu_heavy.weights = (1.0, 4.0);
    let mix = Mix::by_name("C6").unwrap();
    let rc = run_sim(&cpu_heavy, &mix, PolicyKind::HydrogenFull);
    let rg = run_sim(&gpu_heavy, &mix, PolicyKind::HydrogenFull);
    // Not a strict theorem at tiny scale, but the CPU-weighted run should
    // not give the CPU *less* IPC than the GPU-weighted run.
    assert!(
        rc.cpu_ipc() >= rg.cpu_ipc() * 0.9,
        "cpu-heavy {:.4} vs gpu-heavy {:.4}",
        rc.cpu_ipc(),
        rg.cpu_ipc()
    );
}
