//! Trace-codec property tests and hostile-input hardening (tier 2).
//!
//! Mirrors `persist_migration.rs` for the `.h2trace` format: seeded
//! round-trips must be exact and byte-stable, and *every* malformation —
//! truncation anywhere, bad magic/version, corrupt headers, record counts
//! that disagree with the body, unknown tenant ids, invalid flags,
//! out-of-order timestamps — must come back as a positional diagnostic,
//! never a panic. The scenario JSON codec gets the same treatment.

use h2_check::sample_scenario;
use h2_sim_core::Json;
use h2_trace::{TenantInfo, TenantScenario, TraceFile, TraceRecord, TraceUnit, UnitClass};

fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

/// Deterministically generate a structurally valid trace file from a seed:
/// 1–3 tenants, 1–4 units of mixed class, 0–49 monotonic records each.
fn gen_file(seed: u64) -> TraceFile {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let n_tenants = 1 + (lcg(&mut s) % 3) as usize;
    let tenants = (0..n_tenants)
        .map(|i| TenantInfo { name: format!("t{i}"), priority: (lcg(&mut s) % 4) as u8 })
        .collect();
    let n_units = 1 + (lcg(&mut s) % 4) as usize;
    let mut units = Vec::new();
    for _ in 0..n_units {
        let class = if lcg(&mut s).is_multiple_of(2) { UnitClass::Cpu } else { UnitClass::Gpu };
        let tenant = lcg(&mut s) as usize % n_tenants;
        let mut ts = 0u64;
        let records = (0..lcg(&mut s) % 50)
            .map(|_| {
                ts += lcg(&mut s) % 1000;
                TraceRecord {
                    ts,
                    addr: lcg(&mut s) << 6,
                    gap: (lcg(&mut s) % 100) as u32,
                    idle: (lcg(&mut s) % 50) as u32,
                    write: lcg(&mut s).is_multiple_of(2),
                    dependent: lcg(&mut s).is_multiple_of(8),
                }
            })
            .collect();
        units.push(TraceUnit { class, tenant, records });
    }
    TraceFile {
        label: format!("prop-{seed}"),
        gpu_base: lcg(&mut s),
        meta: Json::obj().field("seed", seed),
        tenants,
        units,
    }
}

#[test]
fn seeded_roundtrips_are_exact_and_byte_stable() {
    for seed in 0..48 {
        let f = gen_file(seed);
        let bytes = f.encode();
        let g = TraceFile::decode(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(f, g, "seed {seed}: decode must reproduce the value");
        assert_eq!(bytes, g.encode(), "seed {seed}: re-encode must be byte-identical");
    }
}

#[test]
fn scenario_json_roundtrips_for_seeded_scenarios() {
    for seed in 0..48 {
        let sc = sample_scenario(seed);
        let compact = sc.to_json().to_string_compact();
        let back = TenantScenario::from_json(&Json::parse(&compact).unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(sc, back, "seed {seed}: scenario decode must reproduce the value");
        assert_eq!(
            compact,
            back.to_json().to_string_compact(),
            "seed {seed}: scenario JSON must be canonical"
        );
    }
}

#[test]
fn every_truncation_is_rejected_without_panicking() {
    let bytes = gen_file(1).encode();
    for cut in 0..bytes.len() {
        assert!(
            TraceFile::decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
}

/// Patch one ASCII needle inside the header (same length, so the declared
/// header size stays valid).
fn patch_header(bytes: &[u8], needle: &str, replacement: &str) -> Vec<u8> {
    assert_eq!(needle.len(), replacement.len(), "patch must preserve length");
    let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut out = bytes.to_vec();
    let header = &mut out[12..12 + header_len];
    let at = header
        .windows(needle.len())
        .position(|w| w == needle.as_bytes())
        .unwrap_or_else(|| panic!("needle {needle:?} not found in header"));
    header[at..at + needle.len()].copy_from_slice(replacement.as_bytes());
    out
}

fn decode_err(bytes: &[u8]) -> String {
    TraceFile::decode(bytes).expect_err("malformed input must be rejected")
}

/// A small hand-built file with a guaranteed shape (one CPU unit with two
/// records, one GPU unit with one), so the byte-level mutations below
/// always land where they intend to.
fn hand_file() -> TraceFile {
    TraceFile {
        label: "hand".into(),
        gpu_base: 1 << 20,
        meta: Json::obj().field("k", 1u64),
        tenants: vec![TenantInfo { name: "a".into(), priority: 0 }],
        units: vec![
            TraceUnit {
                class: UnitClass::Cpu,
                tenant: 0,
                records: vec![
                    TraceRecord { ts: 1, addr: 64, gap: 3, idle: 0, write: false, dependent: false },
                    TraceRecord { ts: 5, addr: 128, gap: 2, idle: 1, write: true, dependent: false },
                ],
            },
            TraceUnit {
                class: UnitClass::Gpu,
                tenant: 0,
                records: vec![TraceRecord {
                    ts: 2,
                    addr: 1 << 20,
                    gap: 1,
                    idle: 0,
                    write: false,
                    dependent: true,
                }],
            },
        ],
    }
}

#[test]
fn malformations_are_rejected_with_diagnostics() {
    let good = hand_file().encode();

    // Too short for even the fixed preamble.
    assert!(decode_err(&good[..7]).contains("need at least 12"));

    // Wrong magic.
    let mut b = good.clone();
    b[0] = b'X';
    assert!(decode_err(&b).contains("bad magic"));

    // Unsupported format version.
    let mut b = good.clone();
    b[4] = 99;
    assert!(decode_err(&b).contains("unsupported version 99"));

    // Header length pointing past the end of the file.
    let mut b = good.clone();
    b[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_err(&b).contains("truncated header"));

    // Header bytes that are not UTF-8.
    let mut b = good.clone();
    b[12] = 0xFF;
    let e = decode_err(&b);
    assert!(e.contains("UTF-8") || e.contains("header JSON"), "{e}");

    // Header that is valid UTF-8 but not the expected JSON shape.
    let b = patch_header(&good, "\"schema\"", "\"schemb\"");
    assert!(decode_err(&b).contains("missing u64 field 'schema'"));

    // Schema field disagreeing with the binary version.
    let b = patch_header(&good, "\"schema\":1", "\"schema\":2");
    assert!(decode_err(&b).contains("disagrees with file version"));

    // Unknown unit class.
    let b = patch_header(&good, "\"class\":\"cpu\"", "\"class\":\"xpu\"");
    assert!(decode_err(&b).contains("unknown class 'xpu'"));

    // Body shorter than the declared record count.
    assert!(decode_err(&good[..good.len() - 1]).contains("truncated"));

    // Bytes after the last declared record.
    let mut b = good.clone();
    b.push(0);
    assert!(decode_err(&b).contains("trailing bytes"));

    // Invalid flag bits in the last record row.
    let mut b = good.clone();
    let flags_at = b.len() - 1;
    b[flags_at] = 0xF0;
    assert!(decode_err(&b).contains("invalid flag bits"));
}

#[test]
fn structural_lies_in_the_header_are_rejected() {
    // A unit naming a tenant the table does not have.
    let mut f = gen_file(3);
    f.units[0].tenant = 99;
    assert!(decode_err(&f.encode()).contains("unknown tenant id 99"));

    // Duplicate tenant names.
    let mut f = gen_file(3);
    let dup = f.tenants[0].clone();
    f.tenants.push(dup);
    assert!(decode_err(&f.encode()).contains("duplicate name"));

    // An empty tenant table (plain captures always carry `default`).
    let mut f = gen_file(3);
    f.tenants.clear();
    for u in &mut f.units {
        u.tenant = 0;
    }
    assert!(decode_err(&f.encode()).contains("tenant table is empty"));

    // Out-of-order timestamps within one unit.
    let mut f = hand_file();
    f.units[0].records[0].ts = 7;
    f.units[0].records[1].ts = 0;
    assert!(decode_err(&f.encode()).contains("out of order"));
}

/// Seeded single-byte corruption sweep: flipping any one byte must yield
/// either a clean rejection or a successful decode (when the flip lands in
/// don't-care bits like record payloads) — never a panic.
#[test]
fn random_single_byte_flips_never_panic() {
    let good = gen_file(5).encode();
    let mut s = 0xDEAD_BEEFu64;
    for _ in 0..512 {
        let mut b = good.clone();
        let at = lcg(&mut s) as usize % b.len();
        b[at] ^= (1 + lcg(&mut s) % 255) as u8;
        let _ = TraceFile::decode(&b);
    }
}

#[test]
fn malformed_scenario_json_is_rejected_with_diagnostics() {
    let valid = sample_scenario(0).to_json().to_string_compact();
    assert!(TenantScenario::from_json(&Json::parse(&valid).unwrap()).is_ok());

    let cases: &[(&str, &str)] = &[
        (r#"{}"#, "missing string field 'name'"),
        (r#"{"name":"x","seed":1,"tenants":[]}"#, "no tenants"),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["nonesuch"],"gpu":[],"arrival":{"kind":"steady"},"start":0}]}"#,
            "unknown workload 'nonesuch'",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["bert"],"gpu":[],"arrival":{"kind":"steady"},"start":0}]}"#,
            "not a cpu workload",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["gcc"],"gpu":[],"arrival":{"kind":"sometimes"},"start":0}]}"#,
            "unknown arrival kind 'sometimes'",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["gcc"],"gpu":[],"arrival":{"kind":"diurnal","period":0,"amp":0.5,"phase":0.0},"start":0}]}"#,
            "period must be > 0",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["gcc"],"gpu":[],"arrival":{"kind":"bursty","on":0,"off":5},"start":0}]}"#,
            "on/off must both be > 0",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":1,"ctxs":0,"cpu":["gcc"],"gpu":[],"arrival":{"kind":"steady"},"start":100,"stop":50}]}"#,
            "must be after start",
        ),
        (
            r#"{"name":"x","seed":1,"tenants":[{"name":"a","priority":0,"cores":0,"ctxs":0,"cpu":[],"gpu":[],"arrival":{"kind":"steady"},"start":0}]}"#,
            "no units",
        ),
    ];
    for (json, want) in cases {
        let j = Json::parse(json).unwrap_or_else(|e| panic!("test JSON invalid: {e}\n{json}"));
        let err = TenantScenario::from_json(&j).expect_err(json);
        assert!(err.contains(want), "want {want:?} in {err:?}");
    }

    // Duplicate tenant names, built from the generator to keep it valid
    // otherwise.
    let mut sc = sample_scenario(6);
    if sc.tenants.len() < 2 {
        let mut extra = sc.tenants[0].clone();
        extra.name = "t0".into();
        sc.tenants.push(extra);
    }
    sc.tenants[1].name = sc.tenants[0].name.clone();
    let err = TenantScenario::from_json(&sc.to_json()).expect_err("dup name");
    assert!(err.contains("duplicate tenant name"), "{err}");
}
