//! Cross-crate accounting invariants checked on real end-to-end runs, over
//! every policy and both hybrid modes.

use hydrogen_repro::hybrid::types::{Mode, ReqClass};
use hydrogen_repro::prelude::*;

fn tiny() -> SystemConfig {
    SystemConfig::tiny()
}

fn all_policies() -> Vec<PolicyKind> {
    let mut v = PolicyKind::fig5_designs();
    v.push(PolicyKind::NoPart);
    v.push(PolicyKind::HydrogenStatic { bw: 2, cap: 3, tok: 3 });
    v
}

#[test]
fn hits_plus_misses_equal_accesses() {
    let cfg = tiny();
    let mix = Mix::by_name("C4").unwrap();
    for kind in all_policies() {
        let r = run_sim(&cfg, &mix, kind);
        for class in [ReqClass::Cpu, ReqClass::Gpu] {
            let i = class.idx();
            assert_eq!(
                r.hmc.fast_hits[i] + r.hmc.fast_misses[i],
                r.hmc.accesses[i],
                "{} {:?}",
                r.policy,
                class
            );
        }
    }
}

#[test]
fn misses_split_into_migrations_bypasses_denials() {
    let cfg = tiny();
    let mix = Mix::by_name("C5").unwrap();
    for kind in all_policies() {
        let r = run_sim(&cfg, &mix, kind);
        for i in 0..2 {
            assert_eq!(
                r.hmc.migrations[i] + r.hmc.bypasses[i],
                r.hmc.fast_misses[i],
                "{} class {}",
                r.policy,
                i
            );
            // Every denial becomes a bypass.
            assert!(
                r.hmc.bypasses[i] >= r.hmc.migrations_denied[i] + r.hmc.buffer_denied[i],
                "{} class {}",
                r.policy,
                i
            );
        }
    }
}

#[test]
fn traffic_and_energy_are_positive_and_consistent() {
    let cfg = tiny();
    let mix = Mix::by_name("C7").unwrap();
    for kind in [PolicyKind::NoPart, PolicyKind::HydrogenFull] {
        let r = run_sim(&cfg, &mix, kind);
        assert!(r.fast.bytes > 0 && r.slow.bytes > 0, "{}", r.policy);
        assert!(r.energy_j() > 0.0);
        // Bus busy time is consistent with bytes moved (64 B per >=1 cycle).
        assert!(r.fast.busy_cycles as u64 * 64 >= r.fast.bytes, "{}", r.policy);
        // Row hits + activations cover all commands.
        assert_eq!(
            r.fast.row_hits + r.fast.activations,
            r.fast.reads + r.fast.writes,
            "{}",
            r.policy
        );
    }
}

#[test]
fn flat_mode_every_migration_writes_back() {
    let mut cfg = tiny();
    cfg.mode = Mode::Flat;
    let mix = Mix::by_name("C1").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::NoPart);
    let migrations = r.hmc.migrations[0] + r.hmc.migrations[1];
    assert!(migrations > 0);
    // In flat mode every migration displaces the only copy: the write-back
    // count must track migrations plus lazy fixups (cold fills into invalid
    // ways are the exception, hence >= a substantial fraction).
    assert!(
        r.hmc.victim_writebacks * 2 >= migrations,
        "flat-mode writebacks too rare: {} vs {migrations}",
        r.hmc.victim_writebacks
    );
}

#[test]
fn full_isolation_config_keeps_gpu_out_of_fast() {
    let cfg = tiny();
    let mix = Mix::by_name("C6").unwrap();
    // bw=4, cap=4: every way belongs to the CPU.
    let r = run_sim(
        &cfg,
        &mix,
        PolicyKind::HydrogenStatic { bw: 4, cap: 4, tok: 7 },
    );
    assert_eq!(r.hmc.migrations[1], 0, "GPU must never migrate");
    assert_eq!(r.hmc.bypasses[1], r.hmc.fast_misses[1]);
    // GPU still makes progress through the slow tier.
    assert!(r.gpu_instr > 0);
}

#[test]
fn remap_cache_hit_rate_is_sane() {
    let cfg = tiny();
    let mix = Mix::by_name("C2").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::NoPart);
    assert!(r.remap_hit_rate >= 0.0 && r.remap_hit_rate <= 1.0);
    assert!(r.hmc.meta_reads > 0, "tiny remap cache must miss sometimes");
}
