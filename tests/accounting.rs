//! Cross-crate accounting invariants checked on real end-to-end runs, over
//! every policy and both hybrid modes.

use hydrogen_repro::hybrid::types::{Mode, ReqClass};
use hydrogen_repro::prelude::*;

fn tiny() -> SystemConfig {
    SystemConfig::tiny()
}

fn all_policies() -> Vec<PolicyKind> {
    let mut v = PolicyKind::fig5_designs();
    v.push(PolicyKind::NoPart);
    v.push(PolicyKind::HydrogenStatic { bw: 2, cap: 3, tok: 3 });
    v
}

#[test]
fn hits_plus_misses_equal_accesses() {
    let cfg = tiny();
    let mix = Mix::by_name("C4").unwrap();
    for kind in all_policies() {
        let r = run_sim(&cfg, &mix, kind);
        for class in [ReqClass::Cpu, ReqClass::Gpu] {
            let i = class.idx();
            assert_eq!(
                r.hmc.fast_hits[i] + r.hmc.fast_misses[i],
                r.hmc.accesses[i],
                "{} {:?}",
                r.policy,
                class
            );
        }
    }
}

#[test]
fn misses_split_into_migrations_bypasses_denials() {
    let cfg = tiny();
    let mix = Mix::by_name("C5").unwrap();
    for kind in all_policies() {
        let r = run_sim(&cfg, &mix, kind);
        for i in 0..2 {
            assert_eq!(
                r.hmc.migrations[i] + r.hmc.bypasses[i],
                r.hmc.fast_misses[i],
                "{} class {}",
                r.policy,
                i
            );
            // Every denial becomes a bypass.
            assert!(
                r.hmc.bypasses[i] >= r.hmc.migrations_denied[i] + r.hmc.buffer_denied[i],
                "{} class {}",
                r.policy,
                i
            );
        }
    }
}

#[test]
fn traffic_and_energy_are_positive_and_consistent() {
    let cfg = tiny();
    let mix = Mix::by_name("C7").unwrap();
    for kind in [PolicyKind::NoPart, PolicyKind::HydrogenFull] {
        let r = run_sim(&cfg, &mix, kind);
        assert!(r.fast.bytes > 0 && r.slow.bytes > 0, "{}", r.policy);
        assert!(r.energy_j() > 0.0);
        // Bus busy time is consistent with bytes moved (64 B per >=1 cycle).
        assert!(r.fast.busy_cycles as u64 * 64 >= r.fast.bytes, "{}", r.policy);
        // Row hits + activations cover all commands.
        assert_eq!(
            r.fast.row_hits + r.fast.activations,
            r.fast.reads + r.fast.writes,
            "{}",
            r.policy
        );
    }
}

#[test]
fn flat_mode_every_migration_writes_back() {
    let mut cfg = tiny();
    cfg.mode = Mode::Flat;
    let mix = Mix::by_name("C1").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::NoPart);
    let migrations = r.hmc.migrations[0] + r.hmc.migrations[1];
    assert!(migrations > 0);
    // In flat mode every migration displaces the only copy: the write-back
    // count must track migrations plus lazy fixups (cold fills into invalid
    // ways are the exception, hence >= a substantial fraction).
    assert!(
        r.hmc.victim_writebacks * 2 >= migrations,
        "flat-mode writebacks too rare: {} vs {migrations}",
        r.hmc.victim_writebacks
    );
}

#[test]
fn full_isolation_config_keeps_gpu_out_of_fast() {
    let cfg = tiny();
    let mix = Mix::by_name("C6").unwrap();
    // bw=4, cap=4: every way belongs to the CPU.
    let r = run_sim(
        &cfg,
        &mix,
        PolicyKind::HydrogenStatic { bw: 4, cap: 4, tok: 7 },
    );
    assert_eq!(r.hmc.migrations[1], 0, "GPU must never migrate");
    assert_eq!(r.hmc.bypasses[1], r.hmc.fast_misses[1]);
    // GPU still makes progress through the slow tier.
    assert!(r.gpu_instr > 0);
}

#[test]
fn remap_cache_hit_rate_is_sane() {
    let cfg = tiny();
    let mix = Mix::by_name("C2").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::NoPart);
    assert!(r.remap_hit_rate >= 0.0 && r.remap_hit_rate <= 1.0);
    assert!(r.hmc.meta_reads > 0, "tiny remap cache must miss sometimes");
}

/// Transaction conservation, asserted from the metrics registry: at every
/// observation point `txns_started == txns_retired + inflight`, and a
/// synchronously drained controller ends with nothing in flight.
#[test]
fn transactions_conserve_through_registry() {
    use hydrogen_repro::hybrid::types::HybridConfig;
    use hydrogen_repro::hybrid::{Hmc, HmcEvent, HmcOutput};
    use hydrogen_repro::hydrogen::{HydrogenConfig, HydrogenPolicy};
    use hydrogen_repro::sim::{MetricsRegistry, SeededRng};

    let cfg = HybridConfig {
        fast_capacity: 64 * 1024, // 64 sets x 4 ways x 256 B
        ..HybridConfig::default()
    };
    let policy = HydrogenPolicy::new(HydrogenConfig::full(4, 4, 25));
    let mut hmc = Hmc::new(cfg, Box::new(policy), 7);
    let mut rng = SeededRng::derive(11, "acct.txns");

    let snapshot = |hmc: &Hmc| -> MetricsRegistry {
        let mut reg = MetricsRegistry::new(true);
        let mut s = reg.scoped("hmc");
        hmc.collect_metrics(&mut s);
        reg
    };

    for i in 0..400u64 {
        let class = if rng.chance(0.5) { ReqClass::Cpu } else { ReqClass::Gpu };
        let addr = rng.below(4096) * 256;
        let is_write = rng.chance(0.3);
        let mut queue = Vec::new();
        hmc.access(i, class, addr, is_write, true, &mut queue);
        // Synchronous pump: complete every command immediately.
        while let Some(o) = queue.pop() {
            match o {
                HmcOutput::Mem { cmd, .. } => {
                    let mut nxt = Vec::new();
                    hmc.handle(HmcEvent::MemDone(cmd.token), &mut nxt);
                    queue.extend(nxt);
                }
                HmcOutput::After { token, .. } => {
                    let mut nxt = Vec::new();
                    hmc.handle(HmcEvent::SramDone(token), &mut nxt);
                    queue.extend(nxt);
                }
                HmcOutput::DemandReady { .. } | HmcOutput::Retired { .. } => {}
            }
        }
        if i % 7 == 0 {
            hmc.policy_mut().on_faucet();
        }
        let reg = snapshot(&hmc);
        let started = reg.counter("hmc.txns_started");
        let retired = reg.counter("hmc.txns_retired");
        let inflight = reg.gauge("hmc.inflight").unwrap() as u64;
        assert_eq!(started, retired + inflight, "conservation broke at access {i}");
        assert_eq!(inflight, 0, "synchronous drive must drain access {i}");
    }
    let reg = snapshot(&hmc);
    assert!(reg.counter("hmc.txns_started") >= 400);
    assert_eq!(reg.counter("hmc.cpu.accesses") + reg.counter("hmc.gpu.accesses"), 400);
}

/// Token-faucet conservation from a full run's telemetry: every granted
/// token is spent, discarded by the banking cap, or still banked — and the
/// bank itself is bounded by two periods' grant, so the lifetime flows can
/// never drift apart by more than that.
#[test]
fn token_flows_conserve_in_telemetry_totals() {
    let cfg = tiny();
    let mix = Mix::by_name("C5").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    let t = r.telemetry.as_ref().expect("telemetry on by default");

    let granted = t.totals.counter("hmc.policy.tokens.granted");
    let spent = t.totals.counter("hmc.policy.tokens.spent");
    let discarded = t.totals.counter("hmc.policy.tokens.discarded");
    assert!(granted > 0, "the faucet must have run");

    // granted - spent - discarded == available(end) - available(warm-up),
    // and the bank never holds more than 2 x grant <= 2 x budget tokens.
    let bound = 2 * cfg.token_budget_per_period();
    assert!(
        spent + discarded <= granted + bound,
        "token flows out of balance: {spent} + {discarded} vs {granted} (+{bound})"
    );
    assert!(
        granted <= spent + discarded + bound,
        "granted tokens vanished: {granted} vs {spent} + {discarded} (+{bound})"
    );
    let avail = t.totals.gauge("hmc.policy.tokens.available").unwrap();
    assert!(avail >= 0.0 && avail <= bound as f64, "bank out of range: {avail}");

    // Epoch frames are deltas over sub-windows of the measured window, so
    // their sums can never exceed the window totals, for any counter.
    for name in ["hmc.policy.tokens.granted", "hmc.cpu.accesses", "sys.cpu_instr"] {
        let summed: u64 = t.epochs.iter().map(|f| f.metrics.counter(name)).sum();
        assert!(
            summed <= t.totals.counter(name),
            "{name}: epoch sum {summed} exceeds total {}",
            t.totals.counter(name)
        );
    }
}

/// Per-epoch way-allocation sanity from the telemetry timeline: the
/// `(bw, cap)` in force after each epoch respects `bw <= cap <= assoc`,
/// the frame gauges agree with the adaptation record exactly, and the two
/// classes' fast-way occupancies never exceed the fast tier's way count.
#[test]
fn epoch_way_allocations_stay_within_fast_ways() {
    let cfg = tiny();
    let mix = Mix::by_name("C1").unwrap();
    let r = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    let t = r.telemetry.as_ref().expect("telemetry on by default");
    assert!(!t.epochs.is_empty());

    let total_ways = (cfg.fast_capacity_for(&mix) / cfg.block_bytes) as f64;
    for f in &t.epochs {
        assert!(
            f.record.bw <= f.record.cap && f.record.cap <= cfg.assoc,
            "epoch {}: illegal allocation ({}, {})",
            f.record.epoch,
            f.record.bw,
            f.record.cap
        );
        // Gauges are sampled at the same post-adaptation point the record is
        // built, so they must agree exactly.
        assert_eq!(f.metrics.gauge("hmc.policy.bw"), Some(f.record.bw as f64));
        assert_eq!(f.metrics.gauge("hmc.policy.cap"), Some(f.record.cap as f64));
        let occ_cpu = f.metrics.gauge("hmc.occ_ways.cpu").unwrap();
        let occ_gpu = f.metrics.gauge("hmc.occ_ways.gpu").unwrap();
        assert!(occ_cpu >= 0.0 && occ_gpu >= 0.0);
        assert!(
            occ_cpu + occ_gpu <= total_ways,
            "epoch {}: occupancy {} + {} exceeds {} ways",
            f.record.epoch,
            occ_cpu,
            occ_gpu,
            total_ways
        );
    }
}
