//! Differential test of the dispatch kernels at full-system scale.
//!
//! For every policy in the fuzzer's catalogue, one oracle run (scalar
//! loop on the legacy heap engine — the simplest possible configuration)
//! is compared against the batched and channel-parallel kernels on the
//! production calendar engine. Crossing kernel and engine in one diff
//! pins both axes at once: every counter, the telemetry JSON, and the
//! sampled request trace must be bit-identical. The oracle runs alone
//! process more than one million events.

use hydrogen_repro::prelude::*;
use hydrogen_repro::sim::{EngineKind, SimKernel};

#[test]
fn kernels_match_heap_oracle_across_all_policies() {
    let mix = Mix::by_name("C1").unwrap();
    let mut cfg = SystemConfig::tiny();
    cfg.telemetry = true;
    cfg.trace_sample = Some(64);

    let mut oracle_events = 0u64;
    for &(name, kind) in h2_check::POLICIES {
        let mut oracle_cfg = cfg.clone();
        oracle_cfg.engine = EngineKind::Heap;
        oracle_cfg.kernel = SimKernel::Scalar;
        let want = run_sim(&oracle_cfg, &mix, kind);
        oracle_events += want.events_processed;
        let want_telemetry = want.telemetry_json_string().unwrap();

        for kernel in [SimKernel::Batched, SimKernel::Parallel] {
            let mut kcfg = cfg.clone();
            kcfg.engine = EngineKind::Calendar;
            kcfg.kernel = kernel;
            let got = run_sim(&kcfg, &mix, kind);
            let tag = format!("{name}/{kernel:?}");
            assert_eq!(want.cpu_instr, got.cpu_instr, "{tag}");
            assert_eq!(want.gpu_instr, got.gpu_instr, "{tag}");
            assert_eq!(want.hmc, got.hmc, "{tag}");
            assert_eq!(want.fast, got.fast, "{tag}");
            assert_eq!(want.slow, got.slow, "{tag}");
            assert_eq!(want.epoch_trace, got.epoch_trace, "{tag}");
            assert_eq!(want.events_processed, got.events_processed, "{tag}");
            assert_eq!(want.clamped_events, got.clamped_events, "{tag}");
            assert_eq!(want.fast_channel_bytes, got.fast_channel_bytes, "{tag}");
            assert_eq!(want.slow_channel_bytes, got.slow_channel_bytes, "{tag}");
            assert_eq!(
                want_telemetry,
                got.telemetry_json_string().unwrap(),
                "telemetry must match: {tag}"
            );
            assert_eq!(want.trace, got.trace, "trace must match: {tag}");
        }
    }
    assert!(
        oracle_events > 1_000_000,
        "oracle workload too small to be meaningful: {oracle_events} events"
    );
}
