//! Golden-snapshot regression tests over the telemetry JSON.
//!
//! Each case runs a small end-to-end simulation under *both* event-queue
//! engines, asserts their telemetry timelines are byte-identical, and then
//! compares the JSON against a checked-in snapshot in `tests/golden/`. The
//! snapshots pin the simulator's observable behaviour — instruction counts,
//! hit rates, queue depths, latency histograms, the hill climber's search
//! path — so any unintended behavioural change shows up as a diff.
//!
//! When a change is *intended*, regenerate the snapshots:
//!
//! ```text
//! H2_BLESS=1 cargo test --test golden
//! ```
//!
//! and commit the updated files alongside the change that caused them.

use hydrogen_repro::prelude::*;
use hydrogen_repro::sim::{EngineKind, Json, SimKernel};
use hydrogen_repro::system::run_scenario;
use hydrogen_repro::trace::TenantScenario;
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Run `kind` on `mix` under both engines; check the timeline snapshot.
fn check(name: &str, cfg: &SystemConfig, mix_name: &str, kind: PolicyKind) {
    let mix = Mix::by_name(mix_name).unwrap();

    let mut cal = cfg.clone();
    cal.engine = EngineKind::Calendar;
    let mut heap = cfg.clone();
    heap.engine = EngineKind::Heap;
    let got = run_sim(&cal, &mix, kind)
        .telemetry_json_string()
        .expect("telemetry must be enabled for golden runs");
    let via_heap = run_sim(&heap, &mix, kind)
        .telemetry_json_string()
        .expect("telemetry must be enabled for golden runs");
    assert_eq!(got, via_heap, "{name}: engines must produce identical telemetry");

    // The dispatch kernels must also reproduce the snapshot byte-for-byte:
    // batching is a pure loop transformation and the channel-parallel
    // kernel lands every completion at its sequential `(time, seq)` slot.
    for kernel in [SimKernel::Batched, SimKernel::Parallel] {
        let mut kcfg = cal.clone();
        kcfg.kernel = kernel;
        let via_kernel = run_sim(&kcfg, &mix, kind)
            .telemetry_json_string()
            .expect("telemetry must be enabled for golden runs");
        assert_eq!(
            got, via_kernel,
            "{name}: {kernel:?} kernel must produce identical telemetry"
        );
    }

    let path = golden_path(name);
    if std::env::var_os("H2_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `H2_BLESS=1 cargo test --test golden` and commit the file",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: telemetry diverged from {}; if the change is intended, \
         regenerate with `H2_BLESS=1 cargo test --test golden`",
        path.display()
    );
}

/// Run a multi-tenant scenario under both engines and the Batched/Parallel
/// kernels; check the telemetry timeline (which carries the `tenant.*`
/// metric schema) against a checked-in snapshot, exactly like [`check`].
fn check_scenario(name: &str, cfg: &SystemConfig, sc: &TenantScenario, kind: PolicyKind) {
    let mut cal = cfg.clone();
    cal.engine = EngineKind::Calendar;
    let mut heap = cfg.clone();
    heap.engine = EngineKind::Heap;
    let got = run_scenario(&cal, sc, kind)
        .telemetry_json_string()
        .expect("telemetry must be enabled for golden runs");
    let via_heap = run_scenario(&heap, sc, kind)
        .telemetry_json_string()
        .expect("telemetry must be enabled for golden runs");
    assert_eq!(got, via_heap, "{name}: engines must produce identical telemetry");
    for kernel in [SimKernel::Batched, SimKernel::Parallel] {
        let mut kcfg = cal.clone();
        kcfg.kernel = kernel;
        let via_kernel = run_scenario(&kcfg, sc, kind)
            .telemetry_json_string()
            .expect("telemetry must be enabled for golden runs");
        assert_eq!(
            got, via_kernel,
            "{name}: {kernel:?} kernel must produce identical telemetry"
        );
    }

    let path = golden_path(name);
    if std::env::var_os("H2_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `H2_BLESS=1 cargo test --test golden` and commit the file",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: telemetry diverged from {}; if the change is intended, \
         regenerate with `H2_BLESS=1 cargo test --test golden`",
        path.display()
    );
}

/// The Fig 2 motivation setting: the non-partitioned baseline under
/// CPU-GPU contention.
#[test]
fn golden_fig2_baseline_c1() {
    check("fig2_nopart_c1", &SystemConfig::tiny(), "C1", PolicyKind::NoPart);
}

/// The Fig 9 adaptation setting: full Hydrogen (tokens + hill climbing),
/// exercising the epoch-resolved policy telemetry.
#[test]
fn golden_fig9_hydrogen_c5() {
    check(
        "fig9_hydrogen_c5",
        &SystemConfig::tiny(),
        "C5",
        PolicyKind::HydrogenFull,
    );
}

/// Zero-perturbation guard: enabling the tracing machinery at sample
/// rate 0 (all hooks armed, nothing ever sampled) must leave the telemetry
/// timeline byte-identical to the committed golden — i.e. tracing is pure
/// observation and can never shift simulated time.
#[test]
fn golden_fig2_with_tracing_armed_is_byte_identical() {
    let mut cfg = SystemConfig::tiny();
    cfg.trace_sample = Some(0);
    check("fig2_nopart_c1", &cfg, "C1", PolicyKind::NoPart);
}

/// Zero-perturbation guard for the host-side self-profiler: running the
/// same golden case with every probe armed must reproduce the committed
/// snapshot byte-for-byte — the profiler reads the monotonic clock and the
/// allocation counter, never simulator state, so arming it can never move
/// simulated time (DESIGN.md §17).
#[test]
fn golden_fig2_with_profiler_armed_is_byte_identical() {
    use hydrogen_repro::sim::prof;
    let _lock = prof::test_lock();
    prof::reset();
    prof::arm();
    check("fig2_nopart_c1", &SystemConfig::tiny(), "C1", PolicyKind::NoPart);
    prof::disarm();
    // `check` ran all three dispatch kernels; the profile must have seen
    // each of them, proving the probes were really live during the runs.
    let report = prof::take_report();
    for root in ["run.scalar", "run.batched", "run.parallel"] {
        assert!(report.root(root).is_some(), "armed profile lacks {root}");
    }
}

/// The datacenter scenario setting: the committed 3-tenant example
/// (bursty inference + steady HPC + diurnal analytics) under the
/// non-partitioned baseline, over short windows. Pins the per-tenant SLO
/// schema (`tenant.<name>.priority` / `.lat.cpu` / `.lat.gpu`) alongside
/// the aggregate timeline.
#[test]
fn golden_scenario_inference_hpc_analytics() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/inference_hpc_analytics.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let sc = TenantScenario::from_json(&Json::parse(&text).unwrap()).unwrap();
    let mut cfg = SystemConfig::tiny();
    cfg.epoch_cycles = 20_000;
    cfg.faucet_cycles = 5_000;
    cfg.warmup_cycles = 40_000;
    cfg.measure_cycles = 60_000;
    check_scenario("scenario_inference_hpc_analytics", &cfg, &sc, PolicyKind::NoPart);
}

/// Blessing must be able to round-trip: the written snapshot re-reads as
/// exactly what the comparison path would produce (guards against e.g. a
/// missing trailing newline in the writer).
#[test]
fn golden_format_round_trips() {
    let mix = Mix::by_name("C1").unwrap();
    let r = run_sim(&SystemConfig::tiny(), &mix, PolicyKind::NoPart);
    let s = r.telemetry_json_string().unwrap();
    assert!(s.ends_with('\n'), "pretty JSON must end with a newline");
    assert!(s.starts_with('{'), "timeline must be a JSON object");
    // Host-dependent fields must never leak into the snapshot.
    assert!(!s.contains("wall_s"));
    assert!(!s.contains("events_per_sec"));
}
