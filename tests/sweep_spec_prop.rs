//! Sweep-spec property tests (tier 2).
//!
//! Randomised (but seeded) checks of the sweep-spec contract: every
//! search kind expands deterministically from its spec, expansion never
//! produces duplicate u128 job keys, and specs round-trip exactly through
//! the canonical JSON codec. The generator draws specs from the real
//! parameter/mix/policy vocabulary so the properties cover what users can
//! actually write.

use h2_harness::sweep::spec::{Axis, Goal, Search, SweepPoint, SweepSpec};
use h2_sim_core::SeededRng;
use std::collections::HashSet;

/// Parameters safe to vary at tiny scale without tripping config
/// validation (e.g. assoc must divide the way count, channels the
/// capacity), paired with valid value pools.
const AXIS_POOL: &[(&str, &[u64])] = &[
    ("seed", &[0, 1, 2, 3, 5, 8, 13]),
    ("assoc", &[1, 2, 4, 8]),
    ("epoch_cycles", &[20_000, 40_000, 80_000]),
    ("measure_cycles", &[100_000, 200_000, 400_000]),
    ("remap_cache_bytes", &[1024, 2048, 4096]),
    ("footprint_scale", &[1, 2, 4]),
];

const MIX_POOL: &[&str] = &["C1", "C2", "C3", "C7"];
const POLICY_POOL: &[&str] = &["NoPart", "WayPart", "SetPart", "HydrogenFull"];

/// Draw a random-but-valid spec from `rng`.
fn gen_spec(rng: &mut SeededRng, tag: u64) -> SweepSpec {
    let n_axes = 1 + rng.below(3) as usize;
    let mut picked: Vec<usize> = Vec::new();
    while picked.len() < n_axes {
        let i = rng.below(AXIS_POOL.len() as u64) as usize;
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    let params: Vec<Axis> = picked
        .iter()
        .map(|&i| {
            let (name, pool) = AXIS_POOL[i];
            // A contiguous, non-empty slice of the value pool.
            let lo = rng.below(pool.len() as u64) as usize;
            let hi = lo + 1 + rng.below((pool.len() - lo) as u64) as usize;
            Axis { name: name.into(), values: pool[lo..hi].to_vec() }
        })
        .collect();
    let mixes = vec![MIX_POOL[rng.below(MIX_POOL.len() as u64) as usize].to_string()];
    let n_pol = 1 + rng.below(2) as usize;
    let mut policies: Vec<String> = Vec::new();
    while policies.len() < n_pol {
        let p = POLICY_POOL[rng.below(POLICY_POOL.len() as u64) as usize].to_string();
        if !policies.contains(&p) {
            policies.push(p);
        }
    }
    let search = match rng.below(3) {
        0 => Search::Grid { params },
        1 => Search::Random { samples: 1 + rng.below(20), seed: rng.below(1 << 30), params },
        _ => Search::HillClimb {
            metric: "weighted_ipc".into(),
            goal: if rng.below(2) == 0 { Goal::Max } else { Goal::Min },
            seed: rng.below(1 << 30),
            max_steps: 1 + rng.below(6),
            params,
        },
    };
    SweepSpec {
        name: format!("prop-{tag}"),
        scale: h2_harness::sweep::spec::Scale::Tiny,
        mixes,
        policies,
        base: vec![("warmup_cycles".into(), 50_000)],
        scenario: None,
        search,
    }
}

/// A deterministic synthetic evaluator (no simulations): scores a point
/// by hashing its parameter values, so hill-climbs have a real landscape
/// to walk without costing sim time.
fn synth_eval(ps: &[SweepPoint]) -> Result<Vec<f64>, String> {
    Ok(ps
        .iter()
        .map(|p| {
            let mut h = 0xcbf29ce484222325u64;
            for (name, v) in &p.params {
                for b in name.bytes().chain(v.to_le_bytes()) {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
            }
            (h % 1000) as f64
        })
        .collect())
}

#[test]
fn expansion_is_deterministic_for_every_search_kind() {
    let mut rng = SeededRng::derive(42, "sweep-prop/determinism");
    for tag in 0..60 {
        let spec = gen_spec(&mut rng, tag);
        spec.validate().unwrap_or_else(|e| panic!("generated spec invalid: {e}\n{spec:?}"));
        let a = spec.expand(&mut synth_eval).unwrap();
        let b = spec.expand(&mut synth_eval).unwrap();
        assert_eq!(a, b, "expansion must be a pure function of the spec\n{spec:?}");
        assert!(!a.is_empty());
        // Within one expansion no point repeats.
        for (i, p) in a.iter().enumerate() {
            assert!(!a[..i].contains(p), "duplicate point {p:?}\n{spec:?}");
        }
    }
}

#[test]
fn expanded_jobs_never_collide_on_u128_keys() {
    let mut rng = SeededRng::derive(7, "sweep-prop/keys");
    for tag in 0..40 {
        let spec = gen_spec(&mut rng, tag);
        let points = spec.expand(&mut synth_eval).unwrap();
        let mut keys: HashSet<u128> = HashSet::new();
        let mut total = 0usize;
        for point in &points {
            for job in spec.jobs_for_point(point).unwrap() {
                keys.insert(job.key());
                total += 1;
            }
        }
        assert_eq!(
            keys.len(),
            total,
            "distinct (point, mix, policy) tuples must get distinct keys\n{spec:?}"
        );
    }
}

#[test]
fn specs_roundtrip_through_canonical_json() {
    let mut rng = SeededRng::derive(99, "sweep-prop/roundtrip");
    for tag in 0..60 {
        let spec = gen_spec(&mut rng, tag);
        let text = spec.to_json().to_string_pretty();
        let back = SweepSpec::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back, spec, "parse(to_json(spec)) != spec\n{text}");
        // And the codec is a fixpoint: serialising again is byte-identical.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }
}

#[test]
fn random_search_draws_only_axis_values_and_respects_samples() {
    let mut rng = SeededRng::derive(3, "sweep-prop/random");
    for tag in 0..30 {
        let mut spec = gen_spec(&mut rng, tag);
        let samples = 1 + rng.below(25);
        spec.search = Search::Random {
            samples,
            seed: rng.below(1 << 20),
            params: spec.search.params().to_vec(),
        };
        let points = spec.expand(&mut synth_eval).unwrap();
        assert!(points.len() as u64 <= samples, "dedup can only shrink the draw");
        for p in &points {
            for ((name, v), axis) in p.params.iter().zip(spec.search.params()) {
                assert_eq!(name, &axis.name);
                assert!(axis.values.contains(v), "{name}={v} not in axis {axis:?}");
            }
        }
    }
}

#[test]
fn hillclimb_moves_are_single_axis_steps_from_visited_points() {
    // Structural property of the climb: after the start point, every
    // visited point is exactly one axis index away from some previously
    // visited point (neighbour batches expand around the current best).
    let mut rng = SeededRng::derive(17, "sweep-prop/climb");
    for tag in 0..30 {
        let mut spec = gen_spec(&mut rng, tag);
        spec.search = Search::HillClimb {
            metric: "weighted_ipc".into(),
            goal: Goal::Max,
            seed: rng.below(1 << 20),
            max_steps: 1 + rng.below(8),
            params: spec.search.params().to_vec(),
        };
        let axes = spec.search.params().to_vec();
        let index_of = |p: &SweepPoint| -> Vec<usize> {
            p.params
                .iter()
                .zip(&axes)
                .map(|((_, v), ax)| ax.values.iter().position(|x| x == v).unwrap())
                .collect()
        };
        let points = spec.expand(&mut synth_eval).unwrap();
        let indices: Vec<Vec<usize>> = points.iter().map(&index_of).collect();
        for (i, idx) in indices.iter().enumerate().skip(1) {
            let is_step = |from: &Vec<usize>| {
                let diffs: Vec<usize> = (0..idx.len())
                    .filter(|&d| from[d] != idx[d])
                    .collect();
                diffs.len() == 1 && from[diffs[0]].abs_diff(idx[diffs[0]]) == 1
            };
            assert!(
                indices[..i].iter().any(is_step),
                "point {idx:?} is not a unit step from any visited point\n{spec:?}"
            );
        }
    }
}
