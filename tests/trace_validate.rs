//! Structural validation of the Chrome Trace export (tier 2).
//!
//! A Perfetto file that fails to parse, or whose blame slices leak outside
//! their request slice, renders as garbage without any test noticing —
//! the golden suite only pins bytes for one configuration. This suite
//! re-parses every emitted document with the repo's own dependency-free
//! JSON parser and checks the slice geometry for arbitrary traced runs.

use h2_sim_core::Json;
use h2_system::{run_sim, PolicyKind, SystemConfig};
use h2_trace::Mix;

/// Parse a Chrome Trace document and check its structure: valid JSON, a
/// `traceEvents` array, and for every thread (tid) each `blame` slice
/// `[ts, ts+dur)` nested inside that thread's single `request` slice.
/// Returns the number of blame slices checked.
fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let j = Json::parse(doc).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = match j.get("traceEvents") {
        Some(Json::Arr(xs)) => xs,
        _ => return Err("missing traceEvents array".into()),
    };

    fn u64_field(e: &Json, name: &str) -> Result<u64, String> {
        match e.get(name) {
            Some(Json::U64(v)) => Ok(*v),
            other => Err(format!("event field '{name}' missing or malformed: {other:?}")),
        }
    }
    fn str_field<'a>(e: &'a Json, name: &str) -> Option<&'a str> {
        match e.get(name) {
            Some(Json::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    // First pass: each tid's request slice.
    let mut requests: Vec<(u64, u64, u64, u64)> = Vec::new(); // (pid, tid, ts, end)
    for e in events {
        if str_field(e, "ph") == Some("X") && str_field(e, "cat") == Some("request") {
            let pid = u64_field(e, "pid")?;
            let tid = u64_field(e, "tid")?;
            let ts = u64_field(e, "ts")?;
            let end = ts + u64_field(e, "dur")?;
            if requests.iter().any(|&(p, t, _, _)| p == pid && t == tid) {
                return Err(format!("duplicate request slice for pid {pid} tid {tid}"));
            }
            requests.push((pid, tid, ts, end));
        }
    }

    // Second pass: every blame slice nests within its thread's request.
    let mut checked = 0;
    for e in events {
        if str_field(e, "ph") != Some("X") || str_field(e, "cat") != Some("blame") {
            continue;
        }
        let pid = u64_field(e, "pid")?;
        let tid = u64_field(e, "tid")?;
        let ts = u64_field(e, "ts")?;
        let end = ts + u64_field(e, "dur")?;
        let Some(&(_, _, rts, rend)) = requests
            .iter()
            .find(|&&(p, t, _, _)| p == pid && t == tid)
        else {
            return Err(format!("blame slice on pid {pid} tid {tid} has no request slice"));
        };
        if ts < rts || end > rend {
            return Err(format!(
                "blame slice [{ts}, {end}) escapes request [{rts}, {rend}) on tid {tid}"
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

fn traced_run(mix: &str, kind: PolicyKind, sample: u64) -> String {
    let mut cfg = SystemConfig::tiny();
    cfg.trace_sample = Some(sample);
    let report = run_sim(&cfg, &Mix::by_name(mix).unwrap(), kind);
    report
        .chrome_trace_json_string()
        .expect("tracing was enabled, an export must exist")
}

#[test]
fn exported_traces_parse_and_slices_nest() {
    let mut total = 0;
    for (mix, kind) in [
        ("C1", PolicyKind::HydrogenFull),
        ("C3", PolicyKind::NoPart),
        ("C8", PolicyKind::HydrogenDpToken),
    ] {
        let doc = traced_run(mix, kind, 16);
        let checked = validate_chrome_trace(&doc)
            .unwrap_or_else(|e| panic!("{mix}/{kind:?}: {e}"));
        assert!(checked > 0, "{mix}/{kind:?}: no blame slices sampled");
        total += checked;
    }
    assert!(total > 100, "expected a meaningful slice population, got {total}");
}

#[test]
fn validator_rejects_broken_documents() {
    assert!(validate_chrome_trace("{not json").is_err());
    assert!(validate_chrome_trace("{}").unwrap_err().contains("traceEvents"));

    // A blame slice escaping its request must be flagged.
    let bad = Json::obj()
        .field("traceEvents", {
            let mut a = Json::arr();
            a.push(
                Json::obj()
                    .field("ph", "X")
                    .field("pid", 1u64)
                    .field("tid", 7u64)
                    .field("ts", 100u64)
                    .field("dur", 50u64)
                    .field("cat", "request")
                    .field("name", "request"),
            );
            a.push(
                Json::obj()
                    .field("ph", "X")
                    .field("pid", 1u64)
                    .field("tid", 7u64)
                    .field("ts", 140u64)
                    .field("dur", 20u64) // [140, 160) escapes [100, 150)
                    .field("cat", "blame")
                    .field("name", "service"),
            );
            a
        })
        .to_string_compact();
    assert!(validate_chrome_trace(&bad).unwrap_err().contains("escapes"));
}
