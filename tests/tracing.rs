//! End-to-end properties of the request-level causal tracer
//! (`h2_sim_core::trace_span` threaded through the full system runner).
//!
//! Three invariants pin the tracer's contract:
//!
//! 1. **Blame conservation** — for every sampled request, the blamed
//!    intervals exactly tile its `[start, end)` lifetime: no gap, no
//!    overlap, no cycle charged twice or not at all.
//! 2. **Deterministic sampling** — the sampled span set (ids, lifetimes,
//!    blame decompositions) is identical across repeat runs and across
//!    both event-queue engines for a given seed and rate.
//! 3. **Zero perturbation** — running traced changes nothing observable:
//!    instruction counts, cycle counts, and the telemetry timeline are
//!    byte-identical to an untraced run.

use hydrogen_repro::prelude::*;
use hydrogen_repro::sim::trace_span::{BlameCause, Span};
use hydrogen_repro::sim::EngineKind;

fn traced_run(engine: EngineKind, sample: u64, mix: &str, kind: PolicyKind) -> RunReport {
    let mut cfg = SystemConfig::tiny();
    cfg.engine = engine;
    cfg.trace_sample = Some(sample);
    run_sim(&cfg, &Mix::by_name(mix).unwrap(), kind)
}

/// Intervals sorted, non-overlapping, gap-free, covering the span exactly.
fn assert_tiles(s: &Span) {
    assert!(s.end > s.start, "span {} has no extent", s.id);
    assert!(!s.intervals.is_empty(), "span {} has no intervals", s.id);
    let mut at = s.start;
    for iv in &s.intervals {
        assert_eq!(iv.start, at, "span {}: gap or overlap at {at}", s.id);
        assert!(iv.end > iv.start, "span {}: empty interval", s.id);
        at = iv.end;
    }
    assert_eq!(at, s.end, "span {}: intervals stop short of the end", s.id);
}

#[test]
fn blame_intervals_tile_every_request_exactly() {
    for kind in [PolicyKind::NoPart, PolicyKind::HydrogenFull] {
        let r = traced_run(EngineKind::Calendar, 4, "C1", kind);
        let t = r.trace.expect("tracing on");
        assert!(!t.spans.is_empty(), "{kind:?}: rate 4 must sample spans");
        for s in &t.spans {
            assert_tiles(s);
        }
    }
}

#[test]
fn sampled_spans_cover_both_sides_and_real_causes() {
    let r = traced_run(EngineKind::Calendar, 2, "C1", PolicyKind::HydrogenFull);
    let t = r.trace.expect("tracing on");
    let classes: std::collections::HashSet<u8> = t.spans.iter().map(|s| s.class).collect();
    assert!(classes.contains(&0), "no CPU demand spans sampled");
    assert!(classes.contains(&1), "no GPU demand spans sampled");
    // Service time is the one cause every request must incur.
    let causes: std::collections::HashSet<u8> = t
        .spans
        .iter()
        .flat_map(|s| s.intervals.iter().map(|iv| iv.cause.as_u8()))
        .collect();
    assert!(causes.contains(&BlameCause::Service.as_u8()), "no service intervals");
    assert!(causes.len() > 1, "only one blame cause ever assigned");
}

#[test]
fn sampling_is_deterministic_across_engines() {
    let cal = traced_run(EngineKind::Calendar, 4, "C5", PolicyKind::HydrogenFull);
    let heap = traced_run(EngineKind::Heap, 4, "C5", PolicyKind::HydrogenFull);
    let (ct, ht) = (cal.trace.unwrap(), heap.trace.unwrap());
    assert!(!ct.spans.is_empty());
    assert_eq!(ct, ht, "engines must sample the identical span set");

    // And across repeat runs of the same engine.
    let again = traced_run(EngineKind::Calendar, 4, "C5", PolicyKind::HydrogenFull);
    assert_eq!(ct, again.trace.unwrap());
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let mut cfg = SystemConfig::tiny();
    let mix = Mix::by_name("C1").unwrap();
    let off = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    cfg.trace_sample = Some(2);
    let on = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);

    assert_eq!(off.cpu_instr, on.cpu_instr);
    assert_eq!(off.gpu_instr, on.gpu_instr);
    assert_eq!(off.measured_cycles, on.measured_cycles);
    assert_eq!(off.events_processed, on.events_processed);
    assert_eq!(off.hmc, on.hmc);
    assert_eq!(off.fast, on.fast);
    assert_eq!(off.slow, on.slow);
    assert_eq!(off.epoch_trace, on.epoch_trace);
}

#[test]
fn interference_matrix_totals_match_the_spans() {
    let r = traced_run(EngineKind::Calendar, 4, "C1", PolicyKind::HydrogenFull);
    let t = r.trace.as_ref().expect("tracing on");
    // Rebuild the blame matrix from the raw spans.
    let mut want = [[0u64; 8]; 2];
    for s in &t.spans {
        for iv in &s.intervals {
            want[s.class.min(1) as usize][iv.cause.as_u8() as usize] += iv.end - iv.start;
        }
    }
    // The telemetry totals' trace scope must agree. Totals cover the
    // measured window only (deltas from the WarmupEnd snapshot) while the
    // report's spans include any closed during warm-up, so each counter is
    // bounded above by its span-derived value.
    let telem = r.telemetry.as_ref().expect("telemetry on");
    let mut seen = 0;
    for (ci, cname) in ["cpu", "gpu"].iter().enumerate() {
        for cause in BlameCause::ALL {
            let counter = format!("trace.blame.{cname}.{}", cause.name());
            let Some((_, got)) = telem.totals.counters().find(|(n, _)| *n == counter)
            else {
                continue;
            };
            seen += 1;
            let want_v = want[ci][cause.as_u8() as usize];
            assert!(
                got <= want_v,
                "{counter}: window total {got} exceeds span-derived {want_v}"
            );
        }
    }
    assert!(seen > 0, "no trace.blame.* counters in telemetry totals");
}

/// Perfetto export: structurally valid Chrome Trace Event JSON with one
/// complete event per span plus one per blamed interval.
#[test]
fn chrome_trace_export_is_consistent_with_the_spans() {
    let r = traced_run(EngineKind::Calendar, 8, "C1", PolicyKind::NoPart);
    let t = r.trace.as_ref().unwrap();
    let json = r.chrome_trace_json_string().expect("traced run exports");
    let n_intervals: usize = t.spans.iter().map(|s| s.intervals.len()).sum();
    // 2 process_name metadata events + 1 parent + intervals.
    let n_events = json.matches(r#"{"ph":"#).count();
    assert_eq!(n_events, 2 + t.spans.len() + n_intervals);
    assert!(json.contains(r#""cat":"blame""#));
}
