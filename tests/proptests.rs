//! Property-based tests over the core data structures, exercised through
//! the public crate APIs.

use hydrogen_repro::hybrid::types::{HybridConfig, ReqClass};
use hydrogen_repro::hybrid::RemapTable;
use hydrogen_repro::hydrogen::partition::PartitionMap;
use hydrogen_repro::hydrogen::TokenBucket;
use hydrogen_repro::sim::SeededRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partition masks always split the ways exactly between classes,
    /// for every legal (n, bw, cap) and any set.
    #[test]
    fn partition_masks_are_exact_partitions(
        n in 1usize..=16,
        bw_frac in 0.0f64..=1.0,
        cap_frac in 0.0f64..=1.0,
        set in 0u64..100_000,
    ) {
        let bw = (bw_frac * n as f64) as usize;
        let cap = bw + (cap_frac * (n - bw) as f64) as usize;
        let m = PartitionMap::new(n, bw.min(n), cap.min(n));
        let cpu = m.cpu_mask(set);
        let gpu = m.gpu_mask(set);
        prop_assert_eq!(cpu & gpu, 0);
        prop_assert_eq!((cpu | gpu) as u32, (1u32 << n) - 1);
        prop_assert_eq!(cpu.count_ones() as usize, cap.min(n));
    }

    /// way_channel and channel_way are inverse bijections per set.
    #[test]
    fn way_channel_bijective(
        bw in 0usize..=4,
        set in 0u64..10_000,
    ) {
        let m = PartitionMap::new(4, bw, 4);
        let mut seen = [false; 4];
        for w in 0..4 {
            let c = m.way_channel(set, w);
            prop_assert!(c < 4);
            prop_assert!(!seen[c], "channel used twice");
            seen[c] = true;
            prop_assert_eq!(m.channel_way(set, c), w);
        }
    }

    /// A single-step cap change relocates exactly one way per set.
    #[test]
    fn consistent_hashing_minimal_remap(set in 0u64..50_000, cap in 1usize..4) {
        let a = PartitionMap::new(4, 1, cap);
        let b = PartitionMap::new(4, 1, cap + 1);
        prop_assert_eq!(a.changed_ways(&b, set).count_ones(), 1);
    }

    /// The token bucket never goes negative and never grants more than its
    /// cap, for arbitrary spend/refill interleavings.
    #[test]
    fn token_bucket_bounded(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let mut b = TokenBucket::new(50, 3);
        for op in ops {
            match op {
                0 => { let _ = b.try_spend(1); }
                1 => { let _ = b.try_spend(2); }
                _ => b.refill(),
            }
            prop_assert!(b.available() <= 2 * b.grant().max(1) + 100);
        }
    }

    /// The remap table never stores duplicate tags in a set and never
    /// reports dirty on invalid ways, under random fill/touch/invalidate.
    #[test]
    fn remap_table_invariants(ops in proptest::collection::vec((0u64..64, 0u64..32, 0u8..4), 1..300)) {
        let cfg = HybridConfig {
            fast_capacity: 64 * 1024,
            ..HybridConfig::default()
        };
        let mut t = RemapTable::new(&cfg);
        for (set, tag, op) in ops {
            match op {
                0 | 1 => {
                    if t.lookup(set, tag).is_none() {
                        if let Some(w) = t.pick_victim(set, 0b1111) {
                            t.fill(set, w, tag, ReqClass::Cpu, op == 1);
                        }
                    }
                }
                2 => {
                    if let Some(w) = t.lookup(set, tag) {
                        t.touch(set, w, true);
                    }
                }
                _ => {
                    if let Some(w) = t.lookup(set, tag) {
                        t.invalidate(set, w);
                    }
                }
            }
            prop_assert!(t.check_no_duplicate_tags());
            for w in t.set_view(set) {
                prop_assert!(w.valid || !w.dirty, "dirty invalid way");
            }
        }
    }

    /// Trace generators stay inside their window for every preset.
    #[test]
    fn traces_stay_in_window(seed in 0u64..1000, pick in 0usize..19) {
        let all: Vec<_> = hydrogen_repro::trace::workloads::cpu_workloads()
            .into_iter()
            .chain(hydrogen_repro::trace::workloads::gpu_workloads())
            .collect();
        let spec = &all[pick % all.len()];
        let base = 1u64 << 32;
        let mut g = spec.instantiate(seed, 0, base, 16);
        for _ in 0..500 {
            let r = g.next_ref();
            prop_assert!(r.addr >= base);
            prop_assert!(r.addr < base + g.footprint());
            prop_assert_eq!(r.addr % 64, 0);
        }
    }

    /// Seeded RNG streams with equal labels agree; zipf stays in range.
    #[test]
    fn rng_stream_properties(seed in 0u64..10_000, n in 1u64..10_000) {
        let mut a = SeededRng::derive(seed, "x");
        let mut b = SeededRng::derive(seed, "x");
        prop_assert_eq!(a.next_u64(), b.next_u64());
        prop_assert!(a.zipf(n, 0.9) < n);
        prop_assert!(a.below(n) < n);
    }
}
