//! Randomised property tests over the core data structures, exercised
//! through the public crate APIs.
//!
//! Gated behind the `proptest` cargo feature (on by default). The case
//! generator is the simulator's own [`SeededRng`] rather than an external
//! property-testing crate, so the suite builds with no registry access;
//! every case is deterministic and a failure message names the case seed.

#![cfg(feature = "proptest")]

use hydrogen_repro::hybrid::types::{HybridConfig, ReqClass};
use hydrogen_repro::hybrid::RemapTable;
use hydrogen_repro::hydrogen::partition::PartitionMap;
use hydrogen_repro::hydrogen::TokenBucket;
use hydrogen_repro::sim::{EngineKind, EventQueue, SeededRng};

const CASES: u64 = 64;

/// Run `f` against `CASES` independent deterministic RNG streams.
fn cases(label: &str, f: impl Fn(u64, &mut SeededRng)) {
    for case in 0..CASES {
        let mut rng = SeededRng::derive(case, label);
        f(case, &mut rng);
    }
}

/// The partition masks always split the ways exactly between classes, for
/// every legal (n, bw, cap) and any set.
#[test]
fn partition_masks_are_exact_partitions() {
    cases("prop.partition", |case, rng| {
        let n = 1 + rng.below(16) as usize;
        let bw = (rng.unit() * n as f64) as usize;
        let cap = bw + (rng.unit() * (n - bw) as f64) as usize;
        let set = rng.below(100_000);
        let m = PartitionMap::new(n, bw.min(n), cap.min(n));
        let cpu = m.cpu_mask(set);
        let gpu = m.gpu_mask(set);
        assert_eq!(cpu & gpu, 0, "case {case}: overlapping masks");
        assert_eq!((cpu | gpu) as u32, (1u32 << n) - 1, "case {case}: not a partition");
        assert_eq!(cpu.count_ones() as usize, cap.min(n), "case {case}: wrong CPU share");
    });
}

/// way_channel and channel_way are inverse bijections per set.
#[test]
fn way_channel_bijective() {
    cases("prop.bijective", |case, rng| {
        let bw = rng.below(5) as usize;
        let set = rng.below(10_000);
        let m = PartitionMap::new(4, bw, 4);
        let mut seen = [false; 4];
        for w in 0..4 {
            let c = m.way_channel(set, w);
            assert!(c < 4, "case {case}");
            assert!(!seen[c], "case {case}: channel used twice");
            seen[c] = true;
            assert_eq!(m.channel_way(set, c), w, "case {case}: not inverse");
        }
    });
}

/// A single-step cap change relocates exactly one way per set.
#[test]
fn consistent_hashing_minimal_remap() {
    cases("prop.minremap", |case, rng| {
        let set = rng.below(50_000);
        let cap = 1 + rng.below(3) as usize;
        let a = PartitionMap::new(4, 1, cap);
        let b = PartitionMap::new(4, 1, cap + 1);
        assert_eq!(a.changed_ways(&b, set).count_ones(), 1, "case {case}");
    });
}

/// The token bucket never goes negative and never grants more than its
/// cap, for arbitrary spend/refill interleavings.
#[test]
fn token_bucket_bounded() {
    cases("prop.tokens", |case, rng| {
        let mut b = TokenBucket::new(50, 3);
        let ops = 1 + rng.below(200);
        for _ in 0..ops {
            match rng.below(3) {
                0 => {
                    let _ = b.try_spend(1);
                }
                1 => {
                    let _ = b.try_spend(2);
                }
                _ => b.refill(),
            }
            assert!(
                b.available() <= 2 * b.grant().max(1) + 100,
                "case {case}: bucket overfilled"
            );
        }
    });
}

/// The remap table never stores duplicate tags in a set and never reports
/// dirty on invalid ways, under random fill/touch/invalidate.
#[test]
fn remap_table_invariants() {
    cases("prop.remap", |case, rng| {
        let cfg = HybridConfig {
            fast_capacity: 64 * 1024,
            ..HybridConfig::default()
        };
        let mut t = RemapTable::new(&cfg);
        let ops = 1 + rng.below(300);
        for _ in 0..ops {
            let set = rng.below(64);
            let tag = rng.below(32);
            match rng.below(4) {
                0 | 1 => {
                    let dirty = rng.chance(0.5);
                    if t.lookup(set, tag).is_none() {
                        if let Some(w) = t.pick_victim(set, 0b1111) {
                            t.fill(set, w, tag, ReqClass::Cpu, dirty);
                        }
                    }
                }
                2 => {
                    if let Some(w) = t.lookup(set, tag) {
                        t.touch(set, w, true);
                    }
                }
                _ => {
                    if let Some(w) = t.lookup(set, tag) {
                        t.invalidate(set, w);
                    }
                }
            }
            assert!(t.check_no_duplicate_tags(), "case {case}: duplicate tags");
            for w in t.set_view(set) {
                assert!(w.valid || !w.dirty, "case {case}: dirty invalid way");
            }
        }
    });
}

/// Random way-allocation transitions move only the ways `changed_ways`
/// reports: the mask is *sound* (every flagged way really changed channel
/// or class) and *complete* (every unflagged way kept both). This is the
/// consistent-hashing contract lazy reconfiguration relies on — blocks
/// outside the mask never need relocating.
#[test]
fn partition_transitions_move_only_changed_ways() {
    cases("prop.transitions", |case, rng| {
        let n = 1 + rng.below(16) as usize;
        let pick = |rng: &mut SeededRng| {
            let bw = rng.below(n as u64 + 1) as usize;
            let cap = bw + rng.below((n - bw) as u64 + 1) as usize;
            PartitionMap::new(n, bw, cap)
        };
        let a = pick(rng);
        let b = pick(rng);
        for _ in 0..8 {
            let set = rng.below(100_000);
            let changed = a.changed_ways(&b, set);
            let (a_cpu, b_cpu) = (a.cpu_mask(set), b.cpu_mask(set));
            for w in 0..n {
                let class_same = (a_cpu ^ b_cpu) & (1 << w) == 0;
                let chan_same = a.way_channel(set, w) == b.way_channel(set, w);
                if changed & (1 << w) != 0 {
                    assert!(
                        !(class_same && chan_same),
                        "case {case}: way {w} flagged but unchanged"
                    );
                } else {
                    assert!(class_same && chan_same, "case {case}: way {w} moved silently");
                }
            }
            // Symmetry: the relocation work is the same in both directions.
            assert_eq!(changed, b.changed_ways(&a, set), "case {case}: asymmetric");
            // Same bandwidth split => channels never move, so the mask is
            // exactly the capacity flips.
            if a.bw() == b.bw() {
                assert_eq!(changed, a_cpu ^ b_cpu, "case {case}: phantom channel change");
            }
        }
    });
}

/// Trace generators stay inside their window for every preset.
#[test]
fn traces_stay_in_window() {
    let all: Vec<_> = hydrogen_repro::trace::workloads::cpu_workloads()
        .into_iter()
        .chain(hydrogen_repro::trace::workloads::gpu_workloads())
        .collect();
    cases("prop.traces", |case, rng| {
        let seed = rng.below(1000);
        let spec = &all[rng.below(all.len() as u64) as usize];
        let base = 1u64 << 32;
        let mut g = spec.instantiate(seed, 0, base, 16);
        for _ in 0..500 {
            let r = g.next_ref();
            assert!(r.addr >= base, "case {case} ({}): below window", spec.name);
            assert!(
                r.addr < base + g.footprint(),
                "case {case} ({}): past window",
                spec.name
            );
            assert_eq!(r.addr % 64, 0, "case {case}: unaligned");
        }
    });
}

/// After arbitrary `(bw, cap, tok)` reconfigurations, the controller never
/// leaves a just-accessed block resident in a way the current allocation
/// forbids: a hit on a misplaced block must lazily fix it up (relocate or
/// evict), so remap lookups never serve a stale tier assignment. The remap
/// table also never accumulates duplicate tags across reconfigurations.
#[test]
fn remap_never_serves_stale_ways_after_reconfig() {
    use hydrogen_repro::hybrid::hmc::{HmcEvent, HmcOutput};
    use hydrogen_repro::hybrid::{Hmc, PartitionPolicy, PolicyParams, WayMeta};
    use hydrogen_repro::hydrogen::{HydrogenConfig, HydrogenPolicy};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Adapter that lets the test hold a handle to the policy the HMC owns,
    /// so it can force reconfigurations mid-stream through the public API.
    struct SharedHydrogen(Rc<RefCell<HydrogenPolicy>>);
    impl PartitionPolicy for SharedHydrogen {
        fn name(&self) -> &str {
            "Hydrogen(shared)"
        }
        fn alloc_mask(&self, set: u64, class: ReqClass) -> u16 {
            self.0.borrow().alloc_mask(set, class)
        }
        fn way_channel(&self, set: u64, way: usize) -> usize {
            self.0.borrow().way_channel(set, way)
        }
        fn migration_allowed(
            &mut self,
            class: ReqClass,
            cost: u32,
            is_write: bool,
            slow_channel: usize,
            rng: &mut SeededRng,
        ) -> bool {
            self.0
                .borrow_mut()
                .migration_allowed(class, cost, is_write, slow_channel, rng)
        }
        fn swap_target(
            &self,
            set: u64,
            way: usize,
            class: ReqClass,
            ways: &[WayMeta],
            rng: &mut SeededRng,
        ) -> Option<usize> {
            self.0.borrow().swap_target(set, way, class, ways, rng)
        }
        fn on_faucet(&mut self) {
            self.0.borrow_mut().on_faucet()
        }
        fn params(&self) -> PolicyParams {
            self.0.borrow().params()
        }
    }

    cases("prop.stale", |case, rng| {
        let cfg = HybridConfig {
            fast_capacity: 64 * 1024, // 64 sets x 4 ways x 256 B
            ..HybridConfig::default()
        };
        let handle = Rc::new(RefCell::new(HydrogenPolicy::new(HydrogenConfig::dp_only(
            4, 4,
        ))));
        let block_bytes = cfg.block_bytes;
        let mut hmc = Hmc::new(cfg, Box::new(SharedHydrogen(handle.clone())), case);

        let ops = 100 + rng.below(200);
        for i in 0..ops {
            if rng.chance(0.15) {
                // Random legal (bw, cap, tok) — exactly what the hill
                // climber's `apply` would do, at adversarial cadence.
                let bw = rng.below(5) as usize;
                let cap = bw + rng.below((4 - bw) as u64 + 1) as usize;
                handle.borrow_mut().force_config(bw, cap, rng.below(8) as usize);
                // The shared handle mutates the policy behind the HMC's
                // back; `policy_mut` tells it masks may have changed (the
                // contract every out-of-band reconfiguration must follow,
                // since the controller memoises alloc-masks between
                // epoch/faucet/reconfig boundaries).
                let _ = hmc.policy_mut();
            }
            let class = if rng.chance(0.5) { ReqClass::Cpu } else { ReqClass::Gpu };
            let block = rng.below(512);
            let mut queue = Vec::new();
            hmc.access(i, class, block * block_bytes, rng.chance(0.3), true, &mut queue);
            while let Some(o) = queue.pop() {
                let mut nxt = Vec::new();
                match o {
                    HmcOutput::Mem { cmd, .. } => hmc.handle(HmcEvent::MemDone(cmd.token), &mut nxt),
                    HmcOutput::After { token, .. } => {
                        hmc.handle(HmcEvent::SramDone(token), &mut nxt)
                    }
                    HmcOutput::DemandReady { .. } | HmcOutput::Retired { .. } => {}
                }
                queue.extend(nxt);
            }

            // The block we just touched must now sit in an allowed way (or
            // have been evicted by the lazy fixup) — never a stale one.
            let set = block % hmc.config().num_sets();
            if let Some(way) = hmc.table().lookup(set, block) {
                let owner = hmc.table().set_view(set)[way].owner;
                let mask = hmc.policy().alloc_mask(set, owner);
                assert!(
                    mask & (1 << way) != 0,
                    "case {case} op {i}: block {block} ({owner:?}) left in \
                     forbidden way {way} of set {set} (mask {mask:#06b})"
                );
            }
            assert!(hmc.table().check_no_duplicate_tags(), "case {case} op {i}");
        }
    });
}

/// The memoised alloc-mask always agrees with a direct `policy.alloc_mask`
/// call, across forced reconfigurations, epoch rolls, and faucet ticks on
/// a live controller. `Hmc::check_mask_memo` compares every live memo
/// entry against the policy; it must hold after every single operation —
/// the invariant the `mask-memo` monitor probes at runtime boundaries,
/// here checked at adversarial density.
#[test]
fn mask_memo_agrees_with_direct_policy_calls() {
    use hydrogen_repro::hybrid::hmc::{HmcEvent, HmcOutput};
    use hydrogen_repro::hybrid::policy::EpochSample;
    use hydrogen_repro::hybrid::{Hmc, PartitionPolicy, PolicyParams, WayMeta};
    use hydrogen_repro::hydrogen::{HydrogenConfig, HydrogenPolicy};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared-handle adapter (see `remap_never_serves_stale_ways_after_reconfig`)
    /// extended with `on_epoch` delegation so epoch rolls reach the real
    /// hill climber through the controller's own boundary hook.
    struct SharedHydrogen(Rc<RefCell<HydrogenPolicy>>);
    impl PartitionPolicy for SharedHydrogen {
        fn name(&self) -> &str {
            "Hydrogen(shared)"
        }
        fn alloc_mask(&self, set: u64, class: ReqClass) -> u16 {
            self.0.borrow().alloc_mask(set, class)
        }
        fn way_channel(&self, set: u64, way: usize) -> usize {
            self.0.borrow().way_channel(set, way)
        }
        fn migration_allowed(
            &mut self,
            class: ReqClass,
            cost: u32,
            is_write: bool,
            slow_channel: usize,
            rng: &mut SeededRng,
        ) -> bool {
            self.0
                .borrow_mut()
                .migration_allowed(class, cost, is_write, slow_channel, rng)
        }
        fn swap_target(
            &self,
            set: u64,
            way: usize,
            class: ReqClass,
            ways: &[WayMeta],
            rng: &mut SeededRng,
        ) -> Option<usize> {
            self.0.borrow().swap_target(set, way, class, ways, rng)
        }
        fn on_epoch(&mut self, sample: &EpochSample) -> bool {
            self.0.borrow_mut().on_epoch(sample)
        }
        fn on_faucet(&mut self) {
            self.0.borrow_mut().on_faucet()
        }
        fn params(&self) -> PolicyParams {
            self.0.borrow().params()
        }
    }

    cases("prop.maskmemo", |case, rng| {
        let cfg = HybridConfig {
            fast_capacity: 64 * 1024, // 64 sets x 4 ways x 256 B
            ..HybridConfig::default()
        };
        let handle = Rc::new(RefCell::new(HydrogenPolicy::new(HydrogenConfig::dp_only(
            4, 4,
        ))));
        let block_bytes = cfg.block_bytes;
        let mut hmc = Hmc::new(cfg, Box::new(SharedHydrogen(handle.clone())), case);

        let ops = 100 + rng.below(150);
        for i in 0..ops {
            // Interleave every kind of mask-changing boundary the memo
            // must survive, at adversarial cadence.
            if rng.chance(0.10) {
                let bw = rng.below(5) as usize;
                let cap = bw + rng.below((4 - bw) as u64 + 1) as usize;
                handle.borrow_mut().force_config(bw, cap, rng.below(8) as usize);
                let _ = hmc.policy_mut(); // out-of-band reconfig signal
            }
            if rng.chance(0.10) {
                hmc.on_epoch(&EpochSample {
                    cycles: 10_000,
                    cpu_instr: rng.below(100_000),
                    gpu_instr: rng.below(100_000),
                    weighted_ipc: rng.unit() * 4.0,
                    cpu_hits: rng.below(1000),
                    cpu_misses: rng.below(1000),
                    gpu_hits: rng.below(1000),
                    gpu_misses: rng.below(1000),
                    migrations: rng.below(100),
                    bypasses: rng.below(100),
                });
            }
            if rng.chance(0.15) {
                hmc.on_faucet();
            }
            let class = if rng.chance(0.5) { ReqClass::Cpu } else { ReqClass::Gpu };
            let block = rng.below(512);
            let mut queue = Vec::new();
            hmc.access(i, class, block * block_bytes, rng.chance(0.3), true, &mut queue);
            while let Some(o) = queue.pop() {
                let mut nxt = Vec::new();
                match o {
                    HmcOutput::Mem { cmd, .. } => hmc.handle(HmcEvent::MemDone(cmd.token), &mut nxt),
                    HmcOutput::After { token, .. } => {
                        hmc.handle(HmcEvent::SramDone(token), &mut nxt)
                    }
                    HmcOutput::DemandReady { .. } | HmcOutput::Retired { .. } => {}
                }
                queue.extend(nxt);
            }

            hmc.check_mask_memo()
                .unwrap_or_else(|e| panic!("case {case} op {i}: {e}"));
        }
    });
}

/// Seeded RNG streams with equal labels agree; zipf/below stay in range.
#[test]
fn rng_stream_properties() {
    cases("prop.rng", |case, rng| {
        let seed = rng.below(10_000);
        let n = 1 + rng.below(10_000);
        let mut a = SeededRng::derive(seed, "x");
        let mut b = SeededRng::derive(seed, "x");
        assert_eq!(a.next_u64(), b.next_u64(), "case {case}: streams diverge");
        assert!(a.zipf(n, 0.9) < n, "case {case}: zipf out of range");
        assert!(a.below(n) < n, "case {case}: below out of range");
    });
}

/// For arbitrary schedule/pop interleavings, both event-queue engines emit
/// the same `(time, seq, payload)` stream, time never runs backwards, and
/// same-time events pop in schedule (FIFO) order.
#[test]
fn event_queue_interleavings_agree() {
    cases("prop.queue", |case, rng| {
        let mut cal = EventQueue::with_engine(EngineKind::Calendar);
        let mut heap = EventQueue::with_engine(EngineKind::Heap);
        let mut payload = 0u64;
        let mut last: Option<(u64, u64)> = None;
        let steps = 50 + rng.below(400);
        for _ in 0..steps {
            if rng.chance(0.6) {
                // Schedule: mostly near-horizon, sometimes far (overflow),
                // sometimes an exact tie with `now`.
                let now = cal.now();
                let delta = match rng.below(10) {
                    0 => 0,
                    1..=2 => rng.below(1 << 20), // far: overflow path
                    _ => rng.below(5000),        // near: wheel path
                };
                cal.schedule_at(now + delta, payload);
                heap.schedule_at(now + delta, payload);
                payload += 1;
            } else {
                let a = cal.pop();
                let b = heap.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(
                            (x.time, x.seq, x.payload),
                            (y.time, y.seq, y.payload),
                            "case {case}: engines diverge"
                        );
                        if let Some((t, s)) = last {
                            assert!(x.time >= t, "case {case}: time ran backwards");
                            if x.time == t {
                                assert!(x.seq > s, "case {case}: FIFO tie order broken");
                            }
                        }
                        last = Some((x.time, x.seq));
                    }
                    _ => panic!("case {case}: one engine empty, the other not"),
                }
            }
        }
        // Drain what's left; the streams must stay identical to the end.
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.time, x.seq, x.payload),
                        (y.time, y.seq, y.payload),
                        "case {case}: engines diverge in drain"
                    );
                }
                _ => panic!("case {case}: drain length mismatch"),
            }
        }
    });
}
