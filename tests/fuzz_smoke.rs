//! Fuzzer smoke + committed-reproducer regression suite (tier 2).
//!
//! `tests/repros/` holds shrunk `repro.json` reproducers from past fuzz
//! findings (and from the injected-bug acceptance test). Each one pins a
//! bug that is now fixed: replaying it through the full battery — with
//! the real harness oracles wired — must come back clean, and stay
//! byte-deterministic across both event-queue engines (the battery's
//! engine-differential check proves that on every replay).

use h2_check::{parse_repro, repro_json, run_battery, FuzzCase};
use h2_harness::fuzz_cli::oracle_hooks;
use std::fs;
use std::path::PathBuf;

fn repro_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir:?}: {e}"))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "tests/repros/ must hold at least one reproducer");
    files
}

#[test]
fn committed_repros_replay_clean_and_bit_identical_across_engines() {
    let hooks = oracle_hooks();
    for file in repro_files() {
        let text = fs::read_to_string(&file).unwrap();
        let (case, recorded) = parse_repro(&text)
            .unwrap_or_else(|e| panic!("{file:?} is not a valid repro: {e}"));
        // The battery includes the calendar-vs-heap engine differential,
        // so a clean pass certifies cross-engine byte determinism too.
        run_battery(&case, &hooks).unwrap_or_else(|f| {
            panic!(
                "{file:?} regressed: {} ({}) — originally pinned for {}",
                f.check, f.message, recorded.check
            )
        });
    }
}

#[test]
fn committed_repros_are_in_canonical_format() {
    // Re-serialising the parsed case must reproduce the committed bytes,
    // so `h2 fuzz` output can be committed verbatim and diffs stay clean.
    for file in repro_files() {
        let text = fs::read_to_string(&file).unwrap();
        let (case, failure) = parse_repro(&text).unwrap();
        assert_eq!(
            repro_json(&case, &failure),
            text,
            "{file:?} is not in canonical repro_json format"
        );
    }
}

#[test]
fn short_campaign_with_harness_oracles_is_clean() {
    // A fresh mini-campaign through the *full* oracle set (persistence
    // codec + run-cache replay), complementing the CLI's 50-seed CI gate.
    let hooks = oracle_hooks();
    let outcome = h2_check::fuzz(0, 3, None, &hooks, &mut |_, _| {});
    assert_eq!(outcome.cases_run, 3);
    if let Some((case, failure, _)) = outcome.failure {
        panic!("seed {} failed {}: {}", case.case_seed, failure.check, failure.message);
    }
}

#[test]
fn replay_of_a_freshly_generated_case_is_deterministic() {
    // generate → serialise → parse → battery: the full `h2 fuzz --replay`
    // path in-process, for a case that never touched disk.
    let case = FuzzCase::generate(1234);
    let text = repro_json(&case, &h2_check::Failure {
        check: "none".into(),
        message: String::new(),
    });
    let (parsed, _) = parse_repro(&text).unwrap();
    assert_eq!(parsed, case);
    run_battery(&parsed, &oracle_hooks()).unwrap();
}
