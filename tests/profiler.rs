//! End-to-end tests for the host-side self-profiler (DESIGN.md §17) on
//! real simulations: tree shape per dispatch kernel, per-shard wall-time
//! tiling in the parallel kernel, and artifact export.
//!
//! The profiler is process-global, so every test holds `prof::test_lock()`
//! for its whole body.

use hydrogen_repro::prelude::*;
use hydrogen_repro::sim::prof;
use hydrogen_repro::sim::SimKernel;

fn profiled_run(kernel: SimKernel, mix: &str, kind: PolicyKind) -> prof::ProfReport {
    prof::reset();
    prof::arm();
    let mut cfg = SystemConfig::tiny();
    cfg.kernel = kernel;
    let _ = run_sim(&cfg, &Mix::by_name(mix).unwrap(), kind);
    prof::disarm();
    prof::take_report()
}

/// The scalar kernel's profile exposes the dispatch/HMC/cache/scheduling
/// split the acceptance criteria name, with bounded unattributed time.
#[test]
fn scalar_profile_has_the_full_phase_split() {
    let _lock = prof::test_lock();
    let report = profiled_run(SimKernel::Scalar, "C1", PolicyKind::HydrogenFull);
    let root = report.root("run.scalar").expect("scalar run root");
    for phase in ["dispatch.core_wake", "dispatch.mem_done", "dispatch.epoch"] {
        assert!(root.child(phase).is_some(), "missing {phase}");
    }
    let mem = root
        .children
        .iter()
        .find_map(|c| c.child("mem.schedule"))
        .expect("mem.schedule under a dispatch arm");
    assert!(mem.count > 0);
    // HMC phases nest under the hmc_start dispatch arm.
    let hmc = root.child("dispatch.hmc_start").expect("hmc dispatch arm");
    assert!(hmc.child("hmc.access").is_some(), "hmc.access under hmc_start");

    // Attribution quality: time not claimed by any child of the run root
    // ("other") stays a small slice of the whole run. The kernel loops
    // hand off between `queue.pop` and the dispatch arms on shared clock
    // readings, so in practice this is ~0% — 5% is the acceptance bound.
    let children: u64 = root.children.iter().map(|c| c.incl_ns).sum();
    assert!(children <= root.incl_ns, "children must tile under the root");
    let other = root.incl_ns - children;
    assert!(
        other * 100 <= root.incl_ns * 5,
        "unattributed time {other}ns of {}ns root exceeds 5%",
        root.incl_ns
    );
}

/// Parallel kernel: each channel shard's wall time is tiled by exactly
/// busy + barrier_wait + lookahead_stall (plus bounded loop overhead),
/// which is the accounting the acceptance criteria require.
#[test]
fn parallel_shard_time_tiles_into_busy_wait_and_stall() {
    let _lock = prof::test_lock();
    let report = profiled_run(SimKernel::Parallel, "C1", PolicyKind::HydrogenFull);
    assert!(report.root("run.parallel").is_some(), "main-thread run root");

    let shards: Vec<_> = report
        .roots
        .iter()
        .filter(|r| r.name == "shard")
        .collect();
    assert!(!shards.is_empty(), "no shard roots in the parallel profile");
    for shard in shards {
        let wall = shard.incl_ns;
        let part = |name: &str| shard.child(name).map_or(0, |c| c.incl_ns);
        let busy = part("busy");
        let wait = part("barrier_wait");
        let stall = part("lookahead_stall");
        assert!(busy > 0, "{}: shard never did work", shard.label());
        let sum = busy + wait + stall;
        assert!(
            sum <= wall,
            "{}: busy {busy} + wait {wait} + stall {stall} exceeds wall {wall}",
            shard.label()
        );
        assert!(
            sum * 2 >= wall,
            "{}: busy {busy} + wait {wait} + stall {stall} accounts for under \
             half of wall {wall} — the recv loop leaked unclassified time",
            shard.label()
        );
    }

    // The deferred-ChanOp queue-depth counter is per shard.
    assert!(
        report.counters.iter().any(|c| c.name.starts_with("shard.queue_depth[")),
        "missing shard.queue_depth counter"
    );
}

/// Disarmed runs leave no trace at all: the report is empty, so the probes
/// compiled into the hot paths are pure branches when profiling is off.
#[test]
fn disarmed_simulation_records_nothing() {
    let _lock = prof::test_lock();
    prof::reset();
    let mut cfg = SystemConfig::tiny();
    cfg.kernel = SimKernel::Batched;
    let _ = run_sim(&cfg, &Mix::by_name("C1").unwrap(), PolicyKind::NoPart);
    let report = prof::take_report();
    assert!(report.is_empty(), "disarmed run produced {} roots", report.roots.len());
}

/// The folded export of a real run is flamegraph-ready: semicolon-joined
/// frame paths, one space, integer weight — and every line's leading frame
/// is a known root scope.
#[test]
fn folded_export_of_a_real_run_is_well_formed() {
    let _lock = prof::test_lock();
    let report = profiled_run(SimKernel::Scalar, "C1", PolicyKind::NoPart);
    let folded = report.to_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("weight after last space");
        assert!(weight.parse::<u64>().is_ok(), "non-integer weight in {line:?}");
        let first = path.split(';').next().unwrap();
        assert!(
            report.roots.iter().any(|r| r.label() == first),
            "folded frame {first:?} is not a root"
        );
    }
}
