//! End-to-end determinism: identical configurations produce bit-identical
//! statistics, and the seed actually matters.

use hydrogen_repro::prelude::*;

fn tiny() -> SystemConfig {
    SystemConfig::tiny()
}

#[test]
fn same_seed_same_everything_across_policies() {
    let cfg = tiny();
    let mix = Mix::by_name("C3").unwrap();
    for kind in [
        PolicyKind::NoPart,
        PolicyKind::HashCache,
        PolicyKind::Profess,
        PolicyKind::HydrogenFull,
    ] {
        let a = run_sim(&cfg, &mix, kind);
        let b = run_sim(&cfg, &mix, kind);
        assert_eq!(a.cpu_instr, b.cpu_instr, "{}", a.policy);
        assert_eq!(a.gpu_instr, b.gpu_instr, "{}", a.policy);
        assert_eq!(a.hmc, b.hmc, "{}", a.policy);
        assert_eq!(a.fast, b.fast, "{}", a.policy);
        assert_eq!(a.slow, b.slow, "{}", a.policy);
        assert_eq!(a.events_processed, b.events_processed, "{}", a.policy);
        assert_eq!(a.epoch_trace, b.epoch_trace, "{}", a.policy);
    }
}

#[test]
fn seed_changes_outcomes() {
    let mut cfg = tiny();
    let mix = Mix::by_name("C1").unwrap();
    let a = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    cfg.seed = 1234;
    let b = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    assert_ne!(
        (a.cpu_instr, a.gpu_instr),
        (b.cpu_instr, b.gpu_instr),
        "different seeds must diverge"
    );
}

#[test]
fn participants_are_independent_of_each_other() {
    // A CPU-only run must not depend on which GPU workload the mix names.
    let cfg = tiny();
    let c1 = Mix::by_name("C1").unwrap(); // backprop
    let c2 = Mix::by_name("C2").unwrap(); // backprop, different CPUs
    let a = run_sim_parts(&cfg, &c1, PolicyKind::NoPart, Participants::GpuOnly);
    let b = run_sim_parts(&cfg, &c2, PolicyKind::NoPart, Participants::GpuOnly);
    // Same GPU workload, same seed: footprint windows differ (different CPU
    // footprints precede), so only weaker invariants hold.
    assert!(a.gpu_instr > 0 && b.gpu_instr > 0);
    assert_eq!(a.cpu_instr, 0);
    assert_eq!(b.cpu_instr, 0);
}
