//! Per-tenant SLO accounting (tier 2).
//!
//! The conservation law of the datacenter scenario pack: `tenant.*`
//! latency histograms must **exactly partition** the aggregate demand
//! latency histograms (`lat.cpu_read` / `lat.gpu_demand`) — every sample
//! belongs to exactly one tenant, bucket by bucket, count and sum. On top
//! of that: blame intervals on traced scenario requests must tile each
//! span exactly, permuting tenant declaration order must preserve both the
//! partition law and the tenant table as a set, and the committed example
//! scenario (`examples/scenarios/inference_hpc_analytics.json`) must
//! validate and satisfy all of it.

use h2_check::{check_partition, diff_reports, permute_tenants, sample_scenario};
use h2_sim_core::trace_span::tiles_exactly;
use h2_sim_core::{EngineKind, Json, LogHistogram};
use h2_system::report::METRIC_NAMES;
use h2_system::{run_scenario, PolicyKind, RunReport, SystemConfig};
use h2_trace::{Arrival, TenantScenario, TenantSpec};
use std::fs;
use std::path::PathBuf;

fn short_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.seed = seed;
    cfg.telemetry = true;
    cfg.epoch_cycles = 20_000;
    cfg.faucet_cycles = 5_000;
    cfg.warmup_cycles = 40_000;
    cfg.measure_cycles = 60_000;
    cfg
}

/// Three tenants, all bursty with different duty cycles and priorities —
/// the acceptance scenario shape.
fn bursty_triad() -> TenantScenario {
    let tenant = |name: &str, priority, cores, ctxs, cpu: &[&str], gpu: &[&str], on, off| {
        TenantSpec {
            name: name.into(),
            priority,
            cores,
            ctxs,
            cpu: cpu.iter().map(|s| s.to_string()).collect(),
            gpu: gpu.iter().map(|s| s.to_string()).collect(),
            arrival: Arrival::Bursty { on, off },
            start: 0,
            stop: None,
            phase_cycles: None,
        }
    };
    TenantScenario {
        name: "bursty-triad".into(),
        seed: 31,
        tenants: vec![
            tenant("gold", 0, 1, 1, &["gcc"], &["bert"], 4_000, 1_000),
            tenant("silver", 1, 1, 1, &["mcf"], &["bfs"], 2_000, 2_000),
            tenant("bronze", 2, 1, 0, &["lbm"], &[], 1_000, 4_000),
        ],
    }
}

/// Hand-rolled partition check (independent of `h2_check`): merged tenant
/// histograms must equal the aggregates bucket-for-bucket, so per-tenant
/// p50/p99 are quantiles over an exact partition of the aggregate counts.
fn assert_exact_partition(r: &RunReport) {
    let telemetry = r.telemetry.as_ref().expect("SLO runs carry telemetry");
    let empty = LogHistogram::new();
    for (agg_name, cpu_side) in [("lat.cpu_read", true), ("lat.gpu_demand", false)] {
        let agg = telemetry.totals.hist(agg_name).unwrap_or(&empty);
        let mut merged = LogHistogram::new();
        for t in &r.tenants {
            merged.merge(if cpu_side { &t.cpu_lat } else { &t.gpu_lat });
        }
        assert_eq!(merged.count(), agg.count(), "{agg_name}: counts must partition");
        assert_eq!(merged.sum(), agg.sum(), "{agg_name}: sums must partition");
        assert!(
            merged.nonzero_buckets().eq(agg.nonzero_buckets()),
            "{agg_name}: bucket-level partition violated"
        );
    }
}

#[test]
fn three_tenant_bursty_partition_holds_under_both_policies() {
    let sc = bursty_triad();
    for (kind, seed) in [(PolicyKind::NoPart, 3), (PolicyKind::HydrogenFull, 4)] {
        let r = run_scenario(&short_cfg(seed), &sc, kind);
        assert_eq!(r.tenants.len(), 3, "{kind:?}: all three tenants must report");
        assert!(r.tenants.iter().any(|t| t.cpu_lat.count() > 0), "{kind:?}: no CPU samples");
        assert!(r.tenants.iter().any(|t| t.gpu_lat.count() > 0), "{kind:?}: no GPU samples");
        check_partition(&r).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_exact_partition(&r);
    }
}

#[test]
fn tenant_quantile_metrics_resolve_and_are_consistent() {
    let r = run_scenario(&short_cfg(9), &bursty_triad(), PolicyKind::NoPart);
    for name in ["tenant_p50_demand_latency", "tenant_p99_demand_latency"] {
        assert!(METRIC_NAMES.contains(&name), "{name} must be a stable sweep metric");
        assert!(r.metric(name).expect("metric resolves") > 0.0, "{name} must be positive");
    }
    let p50 = r.metric("tenant_p50_demand_latency").unwrap();
    let p99 = r.metric("tenant_p99_demand_latency").unwrap();
    assert!(p50 <= p99, "worst-tenant p50 {p50} cannot exceed worst-tenant p99 {p99}");

    // The tenant metric schema lands in the telemetry timeline too.
    let json = r.telemetry_json_string().expect("telemetry on");
    for t in &r.tenants {
        assert!(json.contains(&format!("tenant.{}.priority", t.name)), "{}", t.name);
        assert!(json.contains(&format!("tenant.{}.lat.cpu", t.name)), "{}", t.name);
        assert!(json.contains(&format!("tenant.{}.lat.gpu", t.name)), "{}", t.name);
    }
}

#[test]
fn blame_intervals_tile_traced_scenario_requests_exactly() {
    let mut cfg = short_cfg(5);
    cfg.trace_sample = Some(8);
    let r = run_scenario(&cfg, &bursty_triad(), PolicyKind::HydrogenFull);
    let trace = r.trace.as_ref().expect("trace_sample arms request tracing");
    assert!(!trace.spans.is_empty(), "sampled scenario run must trace some requests");
    for span in &trace.spans {
        assert!(
            tiles_exactly(&span.intervals, span.start, span.end),
            "span {} [{}, {}) not tiled by {} blame intervals",
            span.id,
            span.start,
            span.end,
            span.intervals.len()
        );
    }
}

/// Rotating tenant declaration order relays out the address space, so
/// absolute metrics may legitimately move — but the partition law must
/// still hold and the tenant table must survive as a set.
#[test]
fn tenant_permutation_preserves_partition_and_tenant_set() {
    let sc = bursty_triad();
    let cfg = short_cfg(13);
    let base = run_scenario(&cfg, &sc, PolicyKind::NoPart);
    let names = |r: &RunReport| {
        let mut v: Vec<_> = r.tenants.iter().map(|t| (t.name.clone(), t.priority)).collect();
        v.sort();
        v
    };
    for rot in 1..sc.tenants.len() {
        let p = run_scenario(&cfg, &permute_tenants(&sc, rot), PolicyKind::NoPart);
        check_partition(&p).unwrap_or_else(|e| panic!("rotation {rot}: {e}"));
        assert_exact_partition(&p);
        assert_eq!(names(&base), names(&p), "rotation {rot} changed the tenant set");
    }
    // Identity rotation is the full differential: bit-identical report.
    let same = run_scenario(&cfg, &permute_tenants(&sc, sc.tenants.len()), PolicyKind::NoPart);
    assert_eq!(diff_reports(&base, &same), None, "full rotation must be the identity");
}

#[test]
fn partition_holds_for_sampled_scenarios_on_both_engines() {
    for seed in 0..6 {
        let sc = sample_scenario(seed);
        let cfg = short_cfg(seed + 100);
        let a = run_scenario(&cfg, &sc, PolicyKind::NoPart);
        check_partition(&a).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut heap = cfg.clone();
        heap.engine = EngineKind::Heap;
        let b = run_scenario(&heap, &sc, PolicyKind::NoPart);
        assert_eq!(
            diff_reports(&a, &b),
            None,
            "seed {seed}: engines diverged on a tagged run"
        );
    }
}

/// The committed example spec must stay valid, canonical, and clean under
/// the SLO checks — it is what the CI smoke and the docs point at.
#[test]
fn committed_example_scenario_validates_and_partitions() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scenarios/inference_hpc_analytics.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let sc = TenantScenario::from_json(&Json::parse(&text).expect("example must be valid JSON"))
        .expect("example scenario must validate");
    assert_eq!(sc.tenants.len(), 3);
    assert_eq!(
        sc.to_json().to_string_compact(),
        TenantScenario::from_json(&sc.to_json()).unwrap().to_json().to_string_compact(),
        "example must round-trip canonically"
    );
    let r = run_scenario(&short_cfg(1), &sc, PolicyKind::NoPart);
    assert_eq!(r.tenants.len(), 3);
    for (slo, spec) in r.tenants.iter().zip(&sc.tenants) {
        assert_eq!(slo.name, spec.name);
        assert_eq!(slo.priority, spec.priority);
    }
    check_partition(&r).expect("example scenario must satisfy the partition law");
    assert_exact_partition(&r);
}
