//! Differential test of the two event-queue engines: the calendar queue
//! (production) against the legacy binary heap (oracle). One million mixed-
//! horizon events are pushed through both with an identical workload; the
//! popped `(time, seq, payload)` streams must be bit-identical, proving the
//! calendar engine preserves the exact `(time, seq)` total order.

use hydrogen_repro::sim::{EngineKind, EventQueue, SeededRng};

const TOTAL_EVENTS: u64 = 1_000_000;

/// A delta distribution resembling the real simulator: dense near-future
/// wake-ups, occasional same-cycle ties, and sparse far-future timers
/// (epoch boundaries, faucets, warm-up ends) that exercise the overflow
/// heap and its migration back into the wheel.
fn next_delta(rng: &mut SeededRng) -> u64 {
    match rng.below(100) {
        0..=4 => 0,                              // same-cycle tie
        5..=69 => rng.below(200),                // core/cache latencies
        70..=89 => rng.below(8_000),             // DRAM latencies
        90..=96 => 16_384 + rng.below(100_000),  // just past the wheel
        _ => 1_000_000 + rng.below(4_000_000),   // epoch/warm-up scale
    }
}

#[test]
fn one_million_mixed_horizon_events_are_bit_identical() {
    let mut cal = EventQueue::with_engine(EngineKind::Calendar);
    let mut heap = EventQueue::with_engine(EngineKind::Heap);
    let mut rng = SeededRng::derive(2024, "diff.schedule");
    let mut pop_rng = SeededRng::derive(2024, "diff.pop");

    let mut scheduled = 0u64;
    let mut popped = 0u64;
    // Interleave bursts of schedules with bursts of pops so the queues
    // breathe (depth rises and falls) instead of one monotone fill+drain.
    while scheduled < TOTAL_EVENTS || popped < scheduled {
        if scheduled < TOTAL_EVENTS {
            let burst = 1 + rng.below(64);
            for _ in 0..burst.min(TOTAL_EVENTS - scheduled) {
                let t = cal.now() + next_delta(&mut rng);
                cal.schedule_at(t, scheduled);
                heap.schedule_at(t, scheduled);
                scheduled += 1;
            }
        }
        let burst = 1 + pop_rng.below(48);
        for _ in 0..burst {
            let a = cal.pop();
            let b = heap.pop();
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.time, x.seq, x.payload),
                        (y.time, y.seq, y.payload),
                        "engines diverged after {popped} pops"
                    );
                    popped += 1;
                }
                (a, b) => panic!("emptiness mismatch after {popped} pops: {a:?} vs {b:?}"),
            }
        }
    }

    assert_eq!(popped, TOTAL_EVENTS);
    assert_eq!(cal.events_processed(), heap.events_processed());
    assert_eq!(cal.clamped_events(), 0);
    assert_eq!(heap.clamped_events(), 0);
    assert!(cal.pop().is_none());
    assert!(heap.pop().is_none());
}
