//! Sweep/store concurrency suite (tier 2).
//!
//! The sharded run store is shared mutable state: sweep workers in one
//! process and multiple `h2` processes may all read, publish, and
//! garbage-collect the same directory at once. These tests hammer one
//! store from many threads and from spawned child processes and assert
//! the safety contract: no torn entries ever become visible, no results
//! are lost, and sweep output is identical to a sequential run.

use h2_harness::cache::{Job, RunCache};
use h2_harness::sweep::store::ShardedStore;
use h2_harness::sweep::{run_sweep, spec::SweepSpec};
use h2_harness::persist::DiskTier;
use h2_system::{PolicyKind, RunReport, SystemConfig};
use h2_trace::Mix;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("h2-sweep-conc-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One cheap real report to publish under many keys.
fn sample_report() -> RunReport {
    let mut cfg = SystemConfig::tiny();
    cfg.warmup_cycles = 50_000;
    cfg.measure_cycles = 100_000;
    let mut cache = RunCache::new();
    cache.run(&Job::new(&cfg, &Mix::by_name("C1").unwrap(), PolicyKind::NoPart))
}

/// Files with extension `ext` anywhere in the store (shard dirs included).
fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).into_iter().flatten().flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == ext) {
                found.push(p);
            }
        }
    }
    found
}

const SPEC_JSON: &str = r#"{
  "name": "conc",
  "scale": "tiny",
  "mixes": ["C1"],
  "policies": ["NoPart", "WayPart"],
  "base": {"warmup_cycles": 50000, "measure_cycles": 100000},
  "search": {"kind": "grid", "params": {"seed": [1, 2]}}
}"#;

#[test]
fn threads_hammering_one_store_lose_nothing() {
    // 8 threads × (store + load) over 32 keys, all racing, including
    // same-key collisions. Every key must end up loadable and intact,
    // with no temp files or quarantined entries left behind.
    let dir = scratch("hammer");
    let store = Arc::new(ShardedStore::open(&dir).unwrap());
    let report = sample_report();
    let keys: Vec<u128> = (0..32u128).map(|i| (i << 120) | (i + 1)).collect();
    std::thread::scope(|s| {
        for t in 0..8 {
            let store = Arc::clone(&store);
            let report = report.clone();
            let keys = keys.clone();
            s.spawn(move || {
                for round in 0..6 {
                    for (i, &key) in keys.iter().enumerate() {
                        if (i + t + round) % 3 == 0 {
                            store.store(key, &report).unwrap();
                        } else if let Some(r) = store.load(key) {
                            // Torn reads would decode garbage or quarantine.
                            assert_eq!(r.cpu_instr, report.cpu_instr);
                        }
                    }
                }
            });
        }
    });
    // Make every key visible, then verify all 32 survive intact.
    for &key in &keys {
        store.store(key, &report).unwrap();
    }
    assert_eq!(store.entries(), keys.len());
    for &key in &keys {
        let r = store.load(key).expect("entry lost");
        assert_eq!(r.cpu_instr, report.cpu_instr);
    }
    assert_eq!(store.quarantined(), 0, "no torn entry was ever served");
    assert!(files_with_ext(&dir, "tmp").is_empty(), "no abandoned temps");
    assert!(files_with_ext(&dir, "bad").is_empty(), "no quarantined files");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_racing_writers_never_breaks_readers() {
    // One thread runs gc in a loop (tight byte budget, zero tmp TTL)
    // while others publish and read. Loads must only ever see intact
    // entries or misses — never a decode failure (quarantine) — and the
    // store must stay structurally clean afterwards.
    let dir = scratch("gc-race");
    let store = Arc::new(ShardedStore::open(&dir).unwrap());
    let report = sample_report();
    std::thread::scope(|s| {
        for t in 0..4u128 {
            let store = Arc::clone(&store);
            let report = report.clone();
            s.spawn(move || {
                for i in 0..40u128 {
                    let key = (t * 40 + i) << 96 | 0xbeef;
                    store.store(key, &report).unwrap();
                    if let Some(r) = store.load(key) {
                        assert_eq!(r.cpu_instr, report.cpu_instr);
                    }
                }
            });
        }
        let gc_store = Arc::clone(&store);
        s.spawn(move || {
            for _ in 0..10 {
                let r = gc_store.gc(4096, std::time::Duration::ZERO).unwrap();
                assert_eq!(r.bad_removed, 0, "gc found quarantined entries");
            }
        });
    });
    assert_eq!(store.quarantined(), 0, "a load hit a torn entry during gc");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_results_identical_sequential_vs_concurrent() {
    // The same spec, run sequentially cold, concurrently cold (fresh
    // store), and concurrently warm (shared store), must render the same
    // summary bytes — worker count, steal order, and cache warmth are
    // invisible in the output.
    let spec = SweepSpec::parse(SPEC_JSON).unwrap();
    let dir_seq = scratch("seq");
    let dir_par = scratch("par");
    let seq_tier = DiskTier::open(&dir_seq).unwrap();
    let par_tier = DiskTier::open(&dir_par).unwrap();

    let seq = run_sweep(&spec, Some(&seq_tier), 1, &mut Vec::new()).unwrap();
    assert_eq!(seq.stats.executed, 4);
    let par_cold = run_sweep(&spec, Some(&par_tier), 4, &mut Vec::new()).unwrap();
    assert_eq!(par_cold.stats.executed, 4);
    let par_warm = run_sweep(&spec, Some(&par_tier), 4, &mut Vec::new()).unwrap();
    assert_eq!(par_warm.stats.executed, 0, "warm rerun fully cached");
    assert_eq!(par_warm.stats.disk_hits, 4);

    assert_eq!(seq.table.render(), par_cold.table.render());
    assert_eq!(seq.table.render(), par_warm.table.render());
    assert_eq!(seq.table.to_csv(), par_warm.table.to_csv());
    let _ = fs::remove_dir_all(&dir_seq);
    let _ = fs::remove_dir_all(&dir_par);
}

/// The `h2` binary next to this test executable, if it has been built.
/// Tier-1 (`cargo test -q` from the root) does not guarantee binaries of
/// dependency packages, so the child-process test degrades to a skip; the
/// harness-package CLI suite (`crates/harness/tests/sweep_cli.rs`) always
/// has the binary via `CARGO_BIN_EXE_h2` and repeats this scenario.
fn h2_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let debug_dir = exe.parent()?.parent()?;
    let candidate = debug_dir.join(format!("h2{}", std::env::consts::EXE_SUFFIX));
    candidate.is_file().then_some(candidate)
}

#[test]
fn two_h2_processes_share_one_store_safely() {
    let Some(h2) = h2_binary() else {
        eprintln!("skipping: h2 binary not built (run `cargo build` first)");
        return;
    };
    let work = scratch("procs");
    let cache_dir = work.join("cache");
    fs::create_dir_all(&work).unwrap();
    let spec_path = work.join("spec.json");
    fs::write(&spec_path, SPEC_JSON).unwrap();

    // Two child processes race the same cold store on the same spec.
    let children: Vec<std::process::Child> = (0..2)
        .map(|i| {
            std::process::Command::new(&h2)
                .arg("sweep")
                .arg(&spec_path)
                .arg("--out")
                .arg(work.join(format!("progress-{i}.jsonl")))
                .arg("--jobs")
                .arg("2")
                .current_dir(&work)
                .env("H2_RUNCACHE", &cache_dir)
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn h2")
        })
        .collect();
    let outputs: Vec<std::process::Output> =
        children.into_iter().map(|c| c.wait_with_output().unwrap()).collect();
    for (i, out) in outputs.iter().enumerate() {
        assert!(
            out.status.success(),
            "child {i} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Both children printed the same deterministic summary table (the
    // text before their differing output paths).
    let table_of = |out: &std::process::Output| {
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        stdout.split("csv:").next().unwrap().to_string()
    };
    assert_eq!(table_of(&outputs[0]), table_of(&outputs[1]));
    assert!(!table_of(&outputs[0]).trim().is_empty());

    // The shared store holds exactly the 4 unique jobs, intact.
    let store = ShardedStore::open(&cache_dir).unwrap();
    assert_eq!(store.entries(), 4);
    assert!(files_with_ext(&cache_dir, "tmp").is_empty());
    assert!(files_with_ext(&cache_dir, "bad").is_empty());

    // An in-process warm sweep over the same store executes nothing and
    // reproduces the children's table.
    let spec = SweepSpec::parse(SPEC_JSON).unwrap();
    let tier = DiskTier::open(&cache_dir).unwrap();
    let warm = run_sweep(&spec, Some(&tier), 2, &mut Vec::new()).unwrap();
    assert_eq!(warm.stats.executed, 0, "every child result was reused");
    assert_eq!(warm.stats.disk_hits, 4);
    assert_eq!(format!("{}\n", warm.table.render()), table_of(&outputs[0]));
    let _ = fs::remove_dir_all(&work);
}
