//! Trace capture/replay differential (tier 2).
//!
//! The `.h2trace` contract (DESIGN.md §18): a captured run, replayed from
//! its own file, must be **bit-identical** to the original — report and
//! telemetry — under every dispatch kernel and both event-queue engines,
//! and a replayed run re-captured must produce the identical byte stream
//! (capture→replay→capture is a fixpoint). A small fixture trace is
//! committed under `tests/golden/` and pinned the same way the telemetry
//! goldens are; regenerate it with `H2_BLESS=1 cargo test --test
//! replay_diff` when the capture format or the simulator's demand streams
//! intentionally change.

use h2_check::{diff_reports, sample_scenario};
use h2_harness::trace_cli::{replay_trace, run_mix_capture, run_scenario_capture};
use h2_sim_core::{EngineKind, Json, SimKernel};
use h2_system::{replay_config, replay_plan, run_plan_monitored, PolicyKind, SystemConfig};
use h2_trace::{Arrival, Mix, TenantScenario, TenantSpec, TraceFile};
use std::fs;
use std::path::PathBuf;

/// Short-window config so the full engine×kernel matrix stays fast.
fn short_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.seed = seed;
    cfg.telemetry = true;
    cfg.epoch_cycles = 20_000;
    cfg.faucet_cycles = 5_000;
    cfg.warmup_cycles = 40_000;
    cfg.measure_cycles = 60_000;
    cfg
}

/// Replay `file` purely from its embedded header under the given engine
/// and kernel, with telemetry armed so the comparison covers the timeline.
fn replay_with(file: &TraceFile, engine: EngineKind, kernel: SimKernel) -> h2_system::RunReport {
    let meta_cfg = SystemConfig::from_json(file.meta.get("config").expect("capture embeds config"))
        .expect("embedded config must decode");
    let policy = file.meta.get("policy").and_then(Json::as_str).expect("capture embeds policy");
    let kind = h2_check::policy_by_name(policy).expect("embedded policy resolves");
    let fast = file
        .meta
        .get("fast_capacity")
        .and_then(Json::as_u64)
        .expect("capture embeds fast_capacity");
    let mut rcfg = replay_config(&meta_cfg, file);
    rcfg.telemetry = true;
    rcfg.engine = engine;
    rcfg.kernel = kernel;
    run_plan_monitored(&rcfg, &file.label, kind, fast, replay_plan(file), None, None)
}

/// Capture → decode from bytes → replay across the whole engine×kernel
/// matrix; every replayed report (telemetry included) must be
/// bit-identical to the original.
fn assert_replay_matrix(orig: &h2_system::RunReport, bytes: &[u8], what: &str) {
    let decoded = TraceFile::decode(bytes).expect("capture must decode");
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        for kernel in [SimKernel::Scalar, SimKernel::Batched, SimKernel::Parallel] {
            let rep = replay_with(&decoded, engine, kernel);
            assert_eq!(
                diff_reports(orig, &rep),
                None,
                "{what}: {engine:?}/{kernel:?} replay diverged from the original"
            );
        }
    }
}

#[test]
fn scenario_capture_replays_bit_identically_across_kernels_and_engines() {
    let sc = sample_scenario(3);
    let cfg = short_cfg(11);
    let (orig, file) =
        run_scenario_capture(&cfg, &sc, "HydrogenFull", PolicyKind::HydrogenFull, true);
    let bytes = file.expect("capture requested").encode();
    assert!(!orig.tenants.is_empty(), "scenario runs must report tenants");
    assert_replay_matrix(&orig, &bytes, "scenario");
}

#[test]
fn mix_capture_replays_bit_identically_across_kernels_and_engines() {
    let mix = Mix::by_name("C1").unwrap();
    let cfg = short_cfg(7);
    let (orig, file) =
        run_mix_capture(&cfg, &mix, "WayPart", h2_check::policy_by_name("WayPart").unwrap());
    assert!(orig.tenants.is_empty(), "classic mix runs are untagged");
    assert_replay_matrix(&orig, &file.encode(), "mix C1");
}

#[test]
fn capture_replay_capture_is_a_byte_fixpoint() {
    let sc = sample_scenario(5);
    let cfg = short_cfg(23);
    let (_, file) = run_scenario_capture(&cfg, &sc, "NoPart", PolicyKind::NoPart, true);
    let bytes = file.expect("capture requested").encode();

    let decoded = TraceFile::decode(&bytes).unwrap();
    let (_, _, refile) = replay_trace(&decoded, None, true).expect("replay from header");
    let rebytes = refile.expect("re-capture requested").encode();
    assert_eq!(bytes, rebytes, "capture→replay→capture must be byte-identical");

    // And the fixpoint is stable: replaying the re-capture captures the
    // same bytes again.
    let (_, _, refile2) =
        replay_trace(&TraceFile::decode(&rebytes).unwrap(), None, true).unwrap();
    assert_eq!(refile2.unwrap().encode(), rebytes, "fixpoint must be stable");
}

// --- committed fixture ----------------------------------------------------

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scenario_capture.h2trace")
}

/// The fixture's scenario: two tenants (one bursty CPU+GPU service, one
/// steady CPU batch job) over very short windows, so the committed file
/// stays small while still exercising tenant tags on both unit classes.
fn fixture_scenario() -> TenantScenario {
    TenantScenario {
        name: "fixture".into(),
        seed: 9,
        tenants: vec![
            TenantSpec {
                name: "svc".into(),
                priority: 0,
                cores: 1,
                ctxs: 1,
                cpu: vec!["gcc".into()],
                gpu: vec!["bfs".into()],
                arrival: Arrival::Bursty { on: 2_000, off: 2_000 },
                start: 0,
                stop: None,
                phase_cycles: None,
            },
            TenantSpec {
                name: "batch".into(),
                priority: 1,
                cores: 1,
                ctxs: 0,
                cpu: vec!["mcf".into()],
                gpu: vec![],
                arrival: Arrival::Steady,
                start: 0,
                stop: None,
                phase_cycles: None,
            },
        ],
    }
}

fn fixture_bytes() -> Vec<u8> {
    let mut cfg = SystemConfig::tiny();
    cfg.seed = 42;
    cfg.telemetry = false;
    cfg.epoch_cycles = 10_000;
    cfg.faucet_cycles = 2_500;
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 20_000;
    let (_, file) =
        run_scenario_capture(&cfg, &fixture_scenario(), "NoPart", PolicyKind::NoPart, true);
    file.expect("capture requested").encode()
}

/// The committed `.h2trace` fixture decodes, is canonical (re-encodes to
/// the identical bytes), replays purely from its header, and re-captures
/// byte-identically — pinning the on-disk format against drift the same
/// way the telemetry goldens pin the simulator.
#[test]
fn committed_trace_fixture_is_canonical_and_replays_clean() {
    let path = fixture_path();
    if std::env::var_os("H2_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, fixture_bytes()).unwrap();
        return;
    }
    let bytes = fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing trace fixture {} ({e}); generate it with \
             `H2_BLESS=1 cargo test --test replay_diff` and commit the file",
            path.display()
        )
    });
    assert_eq!(
        bytes,
        fixture_bytes(),
        "committed fixture diverged from a fresh capture; if the change is \
         intended, regenerate with `H2_BLESS=1 cargo test --test replay_diff`"
    );
    let file = TraceFile::decode(&bytes).expect("fixture must decode");
    assert_eq!(file.encode(), bytes, "fixture must be canonical");
    assert_eq!(file.tenants.len(), 2);

    let (rep, policy, refile) = replay_trace(&file, None, true).expect("fixture replays");
    assert_eq!(policy, "NoPart");
    assert!(rep.cpu_instr > 0);
    assert_eq!(rep.tenants.len(), 2, "tagged fixture must report both tenants");
    assert_eq!(
        refile.unwrap().encode(),
        bytes,
        "replaying the committed fixture must re-capture the identical bytes"
    );
}
