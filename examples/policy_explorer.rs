//! Explore Hydrogen's three-dimensional `(bw, cap, tok)` design space by
//! hand, then watch the online hill climber walk it.
//!
//! ```sh
//! cargo run --release --example policy_explorer [MIX]
//! ```

use hydrogen_repro::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "C5".into());
    let mix = Mix::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown mix {name}");
        std::process::exit(1);
    });
    let cfg = SystemConfig::default();
    let base = run_sim(&cfg, &mix, PolicyKind::NoPart);
    println!("{} baseline weighted IPC: {:.4}\n", mix.name, base.weighted_ipc());

    // A manual slice of the static design space.
    println!("static configurations (speedup vs baseline):");
    println!("{:<22} {:>8} {:>8} {:>8}", "config", "weighted", "CPU", "GPU");
    for (bw, cap, tok) in [
        (0usize, 2usize, 3usize),
        (1, 3, 3),
        (2, 3, 3),
        (3, 3, 3),
        (2, 2, 5),
        (3, 4, 3),
    ] {
        let r = run_sim(&cfg, &mix, PolicyKind::HydrogenStatic { bw, cap, tok });
        let (sc, sg) = r.side_speedups(&base);
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3}",
            format!("bw={bw} cap={cap} tok={tok}"),
            r.weighted_speedup(&base),
            sc,
            sg
        );
    }

    // The online search.
    let full = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    println!(
        "\nonline Hydrogen: speedup {:.3}, converged to {}",
        full.weighted_speedup(&base),
        full.final_params.label
    );
    println!("\nhill-climbing trace (measured epochs):");
    println!("{:>6} {:>10} {:>4} {:>4} {:>4} {:>8}", "epoch", "wIPC", "bw", "cap", "tok", "reconfig");
    for e in full.epoch_trace.iter().take(24) {
        println!(
            "{:>6} {:>10.4} {:>4} {:>4} {:>4} {:>8}",
            e.epoch,
            e.weighted_ipc,
            e.bw,
            e.cap,
            e.tok,
            if e.reconfigured { "yes" } else { "" }
        );
    }
}
