//! Quickstart: run one Table II mix under the non-partitioned baseline and
//! full Hydrogen, and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart [MIX]
//! ```

use hydrogen_repro::prelude::*;
use std::time::Instant;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "C1".to_string());
    let mix = Mix::by_name(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix {mix_name}; use C1..C12");
        std::process::exit(1);
    });

    let cfg = SystemConfig::default();
    println!(
        "mix {}: CPU = {:?} (x2 rate mode), GPU = {}",
        mix.name, mix.cpu, mix.gpu
    );
    println!(
        "fast capacity {} MiB, epoch {} kcyc, window {} Mcyc\n",
        cfg.fast_capacity_for(&mix) >> 20,
        cfg.epoch_cycles / 1000,
        cfg.measure_cycles / 1_000_000
    );

    let t0 = Instant::now();
    let base = run_sim(&cfg, &mix, PolicyKind::NoPart);
    let t_base = t0.elapsed();
    let t0 = Instant::now();
    let h2 = run_sim(&cfg, &mix, PolicyKind::HydrogenFull);
    let t_h2 = t0.elapsed();

    for r in [&base, &h2] {
        println!(
            "{:<16} cpu_ipc {:.3}  gpu_ipc {:.3}  weighted {:.3}  hitC {:.2} hitG {:.2}  migr {}  bypass {}  swaps {}  slowGB/s {:.1}",
            r.policy,
            r.cpu_ipc(),
            r.gpu_ipc(),
            r.weighted_ipc(),
            r.hmc.hit_rate(hydrogen_repro::hybrid::types::ReqClass::Cpu),
            r.hmc.hit_rate(hydrogen_repro::hybrid::types::ReqClass::Gpu),
            r.hmc.migrations[0] + r.hmc.migrations[1],
            r.hmc.bypasses[0] + r.hmc.bypasses[1],
            r.hmc.swaps,
            r.slow.bytes as f64 / (r.measured_cycles as f64 / 3.2),
        );
    }
    println!(
        "\nHydrogen weighted speedup vs baseline: {:.3}x",
        h2.weighted_speedup(&base)
    );
    println!(
        "final Hydrogen config: {}",
        h2.final_params.label
    );
    println!(
        "sim wall time: baseline {:.1}s ({} events), hydrogen {:.1}s ({} events)",
        t_base.as_secs_f64(),
        base.events_processed,
        t_h2.as_secs_f64(),
        h2.events_processed
    );
}
