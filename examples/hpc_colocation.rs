//! HPC co-location scenario: an exascale-style node runs CPU-side physics
//! (CFD/stencil codes) while the integrated GPU serves BERT inference —
//! the paper's C11/C12 motif. Compare how each memory-management design
//! trades CPU and GPU performance, and how fair the outcome is.
//!
//! ```sh
//! cargo run --release --example hpc_colocation
//! ```

use hydrogen_repro::prelude::*;

fn main() {
    let cfg = SystemConfig::default();
    let mix = Mix::by_name("C11").unwrap();
    println!(
        "node: {} CPU cores ({:?} x2) + {} EU GPU running {}\n",
        cfg.cpu_cores, mix.cpu, cfg.gpu_eus, mix.gpu
    );

    // Solo runs define each side's entitlement.
    let cpu_solo = run_sim_parts(&cfg, &mix, PolicyKind::NoPart, Participants::CpuOnly);
    let gpu_solo = run_sim_parts(&cfg, &mix, PolicyKind::NoPart, Participants::GpuOnly);
    let base = run_sim(&cfg, &mix, PolicyKind::NoPart);

    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "design", "wspeedup", "CPU slow", "GPU slow", "fairness", "energy(J)"
    );
    let designs = [
        PolicyKind::NoPart,
        PolicyKind::HashCache,
        PolicyKind::Profess,
        PolicyKind::WayPart,
        PolicyKind::HydrogenFull,
    ];
    for kind in designs {
        let r = run_sim(&cfg, &mix, kind);
        let cs = r.cpu_slowdown(&cpu_solo);
        let gs = r.gpu_slowdown(&gpu_solo);
        // Fairness: ratio of the two slowdowns (1.0 = perfectly balanced).
        let fairness = cs.min(gs) / cs.max(gs);
        println!(
            "{:<20} {:>9.3} {:>9.2} {:>9.2} {:>9.2} {:>10.4}",
            r.policy,
            r.weighted_speedup(&base),
            cs,
            gs,
            fairness,
            r.energy_j(),
        );
    }
    println!(
        "\nHydrogen's goal (§IV): maximise weighted IPC at CPU:GPU = {}:{} while \
         keeping both sides' slowdowns bounded.",
        cfg.weights.0, cfg.weights.1
    );
}
