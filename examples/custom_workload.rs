//! Define custom synthetic workloads through the public API and run them
//! under both hybrid-memory organisations (cache mode and flat mode).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use hydrogen_repro::hybrid::types::Mode;
use hydrogen_repro::prelude::*;
use hydrogen_repro::trace::pattern::Pattern;
use hydrogen_repro::trace::spec::{WorkloadClass, WorkloadSpec};

fn main() {
    // A latency-sensitive CPU workload: an in-memory key-value store with a
    // hot working set and pointer-heavy index walks.
    let kv_store = WorkloadSpec::new(
        "kv-store",
        WorkloadClass::Cpu,
        128, // MiB at paper scale
        vec![
            (0.5, Pattern::Hot { hot_frac: 0.05, hot_prob: 0.85, zipf_s: 0.95 }),
            (0.35, Pattern::Chase),
            (0.15, Pattern::Stream { streams: 2, stride: 64 }),
        ],
        0.25,
        6,
    );

    // A bandwidth-hungry GPU analytics scan over a large column store.
    let scan = WorkloadSpec::new(
        "column-scan",
        WorkloadClass::Gpu,
        512,
        vec![
            (0.85, Pattern::Stream { streams: 16, stride: 64 }),
            (0.15, Pattern::Rand),
        ],
        0.10,
        1,
    );

    let cfg = SystemConfig::default();
    let cpu_side: Vec<WorkloadSpec> = vec![kv_store];
    // Fast capacity = 1/8 of the (scaled) footprint, like the paper.
    let total = (cpu_side[0].footprint_bytes * cfg.cpu_cores as u64 + scan.footprint_bytes)
        / cfg.footprint_scale;
    let fast_capacity = (total / 8).max(1 << 20);

    println!("custom mix: 8x kv-store (CPU) + column-scan (GPU)");
    println!("fast capacity: {} MiB\n", fast_capacity >> 20);

    for mode in [Mode::Cache, Mode::Flat] {
        let mut c = cfg.clone();
        c.mode = mode;
        let base = run_workloads(&c, "custom", &cpu_side, Some(&scan), PolicyKind::NoPart, fast_capacity);
        let h2 = run_workloads(
            &c,
            "custom",
            &cpu_side,
            Some(&scan),
            PolicyKind::HydrogenFull,
            fast_capacity,
        );
        println!(
            "{:?} mode: baseline wIPC {:.4} | Hydrogen wIPC {:.4} ({:.3}x), victim writebacks {} -> {}",
            mode,
            base.weighted_ipc(),
            h2.weighted_ipc(),
            h2.weighted_speedup(&base),
            base.hmc.victim_writebacks,
            h2.hmc.victim_writebacks,
        );
    }
    println!("\nflat mode treats every migration as a swap (two block transfers),");
    println!("so Hydrogen's token counter charges 2 tokens per migration (§IV-F).");
}
